"""Plan-specialized integer join kernels: the ``executor="kernel"`` backend.

The batch executor (:mod:`repro.engine.plan`) is set-at-a-time but still
joins over :class:`~repro.logic.terms.Constant` tuples — every hash-table
probe and every dedup check re-hashes constants, and ``Constant.__hash__``
allocates a tuple per call.  This module *kernelizes* a compiled physical
plan into the integer domain of the process-wide symbol table
(:data:`repro.catalog.symbols.SYMBOLS`):

* every step is re-specialized over **symbol ids** — the build side reads
  a relation's interned rows (:meth:`Relation.int_rows` /
  :meth:`Relation.column_block`), constant arguments are interned once at
  compile time, and join keys are plain ints (id-equality is exactly
  constant-equality, see :mod:`repro.catalog.symbols`);
* adjacent scan→join→compare steps are **fused**: a comparison whose
  operands are ground right after a join becomes a per-row filter closure
  applied inside that join's probe loop, so no intermediate batch is
  materialised;
* each filter/operand is a small closure specialized at compile time over
  the concrete slot indexes and interned constants — the hot loop carries
  no interpretation of step metadata.

Join *order* and slot layout come from :func:`repro.engine.plan.compile_rule`
/ :func:`~repro.engine.plan.compile_conjunction`, so the kernel executor is
order- and safety-equivalent to the batch executor by construction; only
the value domain and the loop bodies differ.

Order comparisons (``<``, ``>=``, …) are about *values*, not identities,
so their closures externalize ids back to constants before comparing —
they keep the exact semantics (including the incompatible-type
:class:`~repro.errors.LogicError`) of :class:`repro.engine.plan._Compare`.

:class:`IntTable` is the transient fact store the semi-naive engine uses
in kernel mode: an append-only list/set pair of id tuples, presenting the
same ``(arity, version, int_rows, distinct_count)`` surface as
:class:`~repro.catalog.relation.Relation`, so build-side memoization and
the cardinality estimator work unchanged.

When the numpy columnar backend is enabled
(``REPRO_COLUMNAR_BACKEND=numpy``), every step additionally carries a
``run_block`` **vector path** operating on 2-D ``int64`` arrays instead of
python tuple batches:

* the build side of a single-key join is laid out once per
  ``(relation, version)`` as sorted key ids + group starts/counts + a 2-D
  extension array (a CSR-style layout), and a whole probe column is
  resolved in one ``np.searchsorted`` call;
* matches expand with ``np.repeat`` plus a concatenated-``arange`` gather —
  no per-tuple python work;
* fused ``=``/``!=`` comparison filters become boolean masks; order
  comparisons (value semantics) and multi-key joins fall back to the
  scalar loops for just that step, preserving semantics exactly;
* batch dedup (:func:`unique_block`) runs ``np.unique`` over a structured
  (void) view of the row bytes, so within-batch duplicate elimination is
  one C call.

The vector and scalar paths share plans, slot layouts, and constant
interning, so they agree answer-for-answer; the differential and parity
suites pin this.
"""

from __future__ import annotations

import operator
from typing import Callable, Sequence

from repro.errors import ArityError, LogicError
from repro.catalog.columnar import numpy_backend, numpy_min_rows
from repro.catalog.symbols import SYMBOLS
from repro.engine.joins import CostEstimator
from repro.engine.plan import (
    DELTA_PREFIX,
    ConjunctionPlan,
    RulePlan,
    _AntiJoin,
    _Bind,
    _Compare,
    _HashJoin,
    compile_conjunction,
    compile_rule,
)
from repro.logic.atoms import Atom
from repro.logic.builtins import comparable
from repro.logic.clauses import Rule
from repro.logic.terms import Constant, Variable

#: An intermediate batch: one symbol-id tuple per binding.
IntBatch = list[tuple[int, ...]]

#: A row filter specialized over the combined (binding + extension) row.
RowFilter = Callable[[tuple[int, ...]], bool]

_ORDER_OPS: dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def _projector(cols: Sequence[int]) -> Callable[[Sequence[int]], tuple]:
    """A row -> tuple projector specialized over fixed column indexes.

    ``operator.itemgetter`` runs the multi-column case at C speed; the
    zero/one column cases need wrapping because itemgetter would return a
    scalar (or not accept zero indexes).
    """
    if not cols:
        return lambda row: ()
    if len(cols) == 1:
        col = cols[0]
        return lambda row: (row[col],)
    return operator.itemgetter(*cols)


class IntTable:
    """An append-only set of interned rows (the kernel's working store).

    ``version`` is the row count: rows are only ever appended, so the
    count is a valid monotone version for ``(identity, version)``-keyed
    build-table memos — the same protocol as :attr:`Relation.version`.
    """

    __slots__ = ("arity", "rows", "index", "_stats", "_array", "_array_version")

    def __init__(self, arity: int, rows: Sequence[tuple[int, ...]] = ()) -> None:
        self.arity = arity
        self.rows: list[tuple[int, ...]] = list(rows)
        self.index: set[tuple[int, ...]] = set(self.rows)
        self._stats: dict[int, tuple[int, int]] = {}
        self._array: object = None
        self._array_version = -1

    def add(self, row: tuple[int, ...]) -> bool:
        """Append a row; returns ``False`` if it was already present."""
        if row in self.index:
            return False
        self.index.add(row)
        self.rows.append(row)
        return True

    def extend_new(self, rows) -> None:
        """Append rows known to be absent (caller already deduplicated)."""
        self.index.update(rows)
        self.rows.extend(rows)

    def int_rows(self) -> list[tuple[int, ...]]:
        return self.rows

    @property
    def version(self) -> int:
        return len(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: object) -> bool:
        return row in self.index

    def distinct_count(self, column: int) -> int:
        """Distinct values in a column, memoized per version (planner use)."""
        cached = self._stats.get(column)
        if cached is not None and cached[0] == len(self.rows):
            return cached[1]
        count = len({row[column] for row in self.rows})
        self._stats[column] = (len(self.rows), count)
        return count

    def as_array(self, np):
        """The rows as a 2-D ``int64`` array, memoized per version."""
        if self._array is not None and self._array_version == len(self.rows):
            return self._array
        arr = np.asarray(self.rows, dtype=np.int64)
        if arr.ndim != 2:
            arr = arr.reshape(len(self.rows), self.arity)
        self._array = arr
        self._array_version = len(self.rows)
        return arr


class ArrayTable:
    """A read-only, array-backed table: the vector path's delta store.

    Presents the same ``(arity, version, int_rows, distinct_count)``
    surface as :class:`IntTable`, so kernel compilation, the cardinality
    estimator, and the scalar fallback can read it — while the vector path
    consumes the 2-D array directly, with no tuple materialisation.
    """

    __slots__ = ("arity", "array", "_np", "_rows")

    def __init__(self, arity: int, array_2d, np) -> None:
        self.arity = arity
        self.array = array_2d
        self._np = np
        self._rows: list[tuple[int, ...]] | None = None

    def as_array(self, np):
        return self.array

    def int_rows(self) -> list[tuple[int, ...]]:
        rows = self._rows
        if rows is None:
            rows = self._rows = [tuple(row) for row in self.array.tolist()]
        return rows

    @property
    def version(self) -> int:
        return len(self.array)

    def __len__(self) -> int:
        return len(self.array)

    def distinct_count(self, column: int) -> int:
        return len(self._np.unique(self.array[:, column]))


class GrowTable:
    """An append-only array-backed table: the vector path's accumulator.

    Rows arrive as disjoint, already-deduplicated 2-D ``int64`` blocks
    (the vector fixpoint screens each batch before extending), so the
    table never re-probes membership: it just collects blocks and
    concatenates lazily.  Presents the same read surface as
    :class:`IntTable` — ``(arity, version, int_rows, distinct_count,
    as_array)`` — so kernel compilation, the cardinality estimator, and
    the scalar fallbacks consume it unchanged, while the vector path
    reads the 2-D array with no tuple materialisation anywhere in the
    fixpoint.
    """

    __slots__ = (
        "arity", "_np", "_parts", "_length",
        "_array", "_array_length", "_rows", "_rows_length",
    )

    def __init__(self, arity: int, np) -> None:
        self.arity = arity
        self._np = np
        self._parts: list = []
        self._length = 0
        self._array: object = None
        self._array_length = -1
        self._rows: list[tuple[int, ...]] | None = None
        self._rows_length = -1

    def extend_block(self, arr) -> None:
        """Append a block of rows known to be new (caller deduplicated)."""
        if len(arr):
            self._parts.append(arr)
            self._length += len(arr)

    @property
    def version(self) -> int:
        # Row count is a valid monotone version: rows are only appended.
        return self._length

    def __len__(self) -> int:
        return self._length

    def as_array(self, np=None):
        """All rows as one 2-D array, memoized per version."""
        np = self._np
        if self._array_length != self._length:
            if not self._parts:
                self._array = np.empty((0, self.arity), dtype=np.int64)
            elif len(self._parts) == 1:
                self._array = self._parts[0]
            else:
                self._array = np.concatenate(self._parts)
                self._parts = [self._array]
            self._array_length = self._length
        return self._array

    def int_rows(self) -> list[tuple[int, ...]]:
        if self._rows_length != self._length:
            self._rows = [tuple(row) for row in self.as_array().tolist()]
            self._rows_length = self._length
        return self._rows

    def distinct_count(self, column: int) -> int:
        np = self._np
        return len(np.unique(self.as_array()[:, column]))


def _vec_source(relation, np):
    """``(get_column, row_count)`` for any build-side store.

    Relations expose zero-copy columnar views; ``IntTable``/``ArrayTable``
    expose a (memoized) 2-D array sliced per column.
    """
    if hasattr(relation, "column_block"):
        block = relation.column_block()
        return block.column_view, len(block)
    arr = relation.as_array(np)
    return (lambda column: arr[:, column]), len(arr)


def _rows_to_array(np, rows, width):
    """A list of id tuples as a 2-D ``int64`` array (empty-safe)."""
    arr = np.asarray(rows, dtype=np.int64)
    if arr.ndim != 2:
        arr = arr.reshape(len(rows), width)
    return arr


def _void_rows(np, arr):
    """A 1-D void (raw bytes per row) view for row-wise set operations."""
    arr = np.ascontiguousarray(arr)
    return arr.view(np.dtype((np.void, arr.dtype.itemsize * arr.shape[1]))).ravel()


def unique_block(np, arr):
    """Row-wise unique of a 2-D ``int64`` array (one ``np.unique`` call)."""
    if arr.shape[0] <= 1:
        return arr
    if arr.shape[1] == 0:
        # Zero-width rows are all the empty tuple.
        return arr[:1]
    _, first = np.unique(_void_rows(np, arr), return_index=True)
    if len(first) == arr.shape[0]:
        return arr
    return arr[first]


def _filter_block(np, batch, checks, specs):
    """Apply compiled comparison filters to a 2-D batch.

    Vectorizable specs (id-domain ``=``/``!=``) become boolean masks;
    the rest (order comparisons, which externalize to values) run their
    scalar closures row-wise over the — usually already masked — batch.
    """
    mask = None
    scalar: list = []
    for check, spec in zip(checks, specs):
        if spec is None:
            scalar.append(check)
            continue
        kind = spec[0]
        if kind == "const":
            if spec[1]:
                continue
            return batch[:0]
        if kind == "ss":
            hits = batch[:, spec[2]] == batch[:, spec[3]]
        else:  # "sc"
            hits = batch[:, spec[2]] == spec[3]
        if not spec[1]:
            hits = ~hits
        mask = hits if mask is None else (mask & hits)
    if mask is not None:
        batch = batch[mask]
    if scalar and len(batch):
        keep = [
            index
            for index, row in enumerate(batch.tolist())
            if all(check(row) for check in scalar)
        ]
        if len(keep) != len(batch):
            if not keep:
                return batch[:0]
            batch = batch[np.asarray(keep, dtype=np.intp)]
    return batch


def _filtered_rows(relation, const_checks, dup_checks):
    """Build-side rows passing the constant/duplicate checks.

    When the numpy feature flag is on and the relation carries a columnar
    block of vectorizable size, the check scan runs over ``array('q')``
    columns instead of a python loop.
    """
    if not const_checks and not dup_checks:
        return relation.int_rows()
    if (
        numpy_backend() is not None
        and len(relation) >= numpy_min_rows()
        and hasattr(relation, "column_block")
    ):
        block = relation.column_block()
        rows = block.int_rows()
        return [rows[i] for i in block.select(const_checks, dup_checks)]
    return [
        row
        for row in relation.int_rows()
        if all(row[c] == sid for c, sid in const_checks)
        and all(row[left] == row[right] for left, right in dup_checks)
    ]


class _KJoin:
    """A hash join specialized over symbol ids, with fused row filters.

    Mirrors :class:`repro.engine.plan._HashJoin` — same key slots/columns,
    same memoized build side — but the build reads interned rows and the
    probe loop applies any fused comparison filters before a combined row
    is admitted to the output batch.
    """

    __slots__ = (
        "predicate", "arity", "key_slots", "key_cols",
        "const_checks", "dup_checks", "out_cols", "fused", "fused_specs",
        "dense_hint",
        "_project", "_key_of", "_probe_key",
        "_cache_rel", "_cache_ver", "_cache_table",
        "_vcache_rel", "_vcache_ver", "_vcache_table",
    )

    def __init__(
        self,
        predicate: str,
        arity: int,
        key_slots: list[int],
        key_cols: list[int],
        const_checks: list[tuple[int, int]],
        dup_checks: list[tuple[int, int]],
        out_cols: list[int],
    ) -> None:
        self.predicate = predicate
        self.arity = arity
        self.key_slots = key_slots
        self.key_cols = key_cols
        self.const_checks = const_checks
        self.dup_checks = dup_checks
        self.out_cols = out_cols
        self.fused: list[RowFilter] = []
        self.fused_specs: list = []
        #: Analysis hint: the key column's value domain is proven compact
        #: (small exact enum), so the vector build may lay the table out as
        #: a dense id->group lookup instead of sorted keys + searchsorted.
        self.dense_hint = False
        # Specialized at compile time: C-speed projectors over the
        # concrete column/slot indexes this join uses.
        self._project = _projector(out_cols)
        self._key_of = _projector(key_cols)
        self._probe_key = _projector(key_slots)
        self._cache_rel: object = None
        self._cache_ver = -1
        self._cache_table: object = None
        self._vcache_rel: object = None
        self._vcache_ver = -1
        self._vcache_table: object = None

    def _build(self, relation) -> object:
        version = relation.version
        if self._cache_rel is relation and self._cache_ver == version:
            return self._cache_table
        rows = _filtered_rows(relation, self.const_checks, self.dup_checks)
        project = self._project
        if not self.key_cols:
            table: object = list(map(project, rows))
        elif len(self.key_cols) == 1:
            key_col = self.key_cols[0]
            single: dict[int, list[tuple[int, ...]]] = {}
            for row in rows:
                single.setdefault(row[key_col], []).append(project(row))
            table = single
        else:
            key_of = self._key_of
            multi: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
            for row in rows:
                multi.setdefault(key_of(row), []).append(project(row))
            table = multi
        self._cache_rel = relation
        self._cache_ver = version
        self._cache_table = table
        return table

    def run(self, batch: IntBatch, relations) -> IntBatch:
        relation = relations(self.predicate)
        if relation is None or len(relation) == 0:
            return []
        if relation.arity != self.arity:
            raise ArityError(
                f"atom {self.predicate}/{self.arity} does not match relation "
                f"arity {relation.arity}"
            )
        table = self._build(relation)
        fused = self.fused
        result: IntBatch = []
        append = result.append
        if not self.key_slots:
            if fused:
                for binding in batch:
                    for extension in table:  # type: ignore[union-attr]
                        row = binding + extension
                        if all(check(row) for check in fused):
                            append(row)
            else:
                for binding in batch:
                    for extension in table:  # type: ignore[union-attr]
                        append(binding + extension)
        elif len(self.key_slots) == 1:
            slot = self.key_slots[0]
            get = table.get  # type: ignore[union-attr]
            if fused:
                for binding in batch:
                    matches = get(binding[slot])
                    if matches:
                        for extension in matches:
                            row = binding + extension
                            if all(check(row) for check in fused):
                                append(row)
            else:
                for binding in batch:
                    matches = get(binding[slot])
                    if matches:
                        for extension in matches:
                            append(binding + extension)
        else:
            probe_key = self._probe_key
            get = table.get  # type: ignore[union-attr]
            if fused:
                for binding in batch:
                    matches = get(probe_key(binding))
                    if matches:
                        for extension in matches:
                            row = binding + extension
                            if all(check(row) for check in fused):
                                append(row)
            else:
                for binding in batch:
                    matches = get(probe_key(binding))
                    if matches:
                        for extension in matches:
                            append(binding + extension)
        return result

    # -- vector path -------------------------------------------------------

    def _build_vec(self, relation, np):
        """CSR-style vector build side, memoized per ``(relation, version)``.

        Single-key layout: sorted unique key ids + group starts/counts +
        the extension columns as one 2-D array in sorted-key order.  A
        keyless scan keeps just the extension array.
        """
        version = relation.version
        if self._vcache_rel is relation and self._vcache_ver == version:
            return self._vcache_table
        get_column, n = _vec_source(relation, np)
        mask = None
        for column, sid in self.const_checks:
            hits = get_column(column) == sid
            mask = hits if mask is None else (mask & hits)
        for left, right in self.dup_checks:
            hits = get_column(left) == get_column(right)
            mask = hits if mask is None else (mask & hits)
        selected = None if mask is None else np.nonzero(mask)[0]
        m = n if selected is None else len(selected)

        def column(index):
            values = get_column(index)
            return values if selected is None else values[selected]

        out_cols = self.out_cols
        if not self.key_cols:
            if out_cols:
                ext = np.stack([column(c) for c in out_cols], axis=1)
            else:
                ext = np.empty((m, 0), dtype=np.int64)
            table = ("scan", ext)
        else:
            keys = column(self.key_cols[0])
            order = np.argsort(keys, kind="stable")
            sorted_keys = keys[order]
            if out_cols:
                ext = np.stack([column(c)[order] for c in out_cols], axis=1)
            else:
                ext = np.empty((m, 0), dtype=np.int64)
            unique_keys, starts = np.unique(sorted_keys, return_index=True)
            counts = np.diff(np.append(starts, m))
            table = ("hash", unique_keys, starts, counts, ext)
            if self.dense_hint and len(unique_keys):
                base = int(unique_keys[0])
                span = int(unique_keys[-1]) - base + 1
                # Dense remap only when the id range is actually compact:
                # probes become one gather instead of a searchsorted.
                if span <= max(4096, 8 * len(unique_keys)) and span <= (1 << 20):
                    lookup = np.full(span, -1, dtype=np.int64)
                    lookup[unique_keys - base] = np.arange(
                        len(unique_keys), dtype=np.int64
                    )
                    table = ("dense", base, lookup, starts, counts, ext)
        self._vcache_rel = relation
        self._vcache_ver = version
        self._vcache_table = table
        return table

    def _run_block_scalar(self, batch, relations, np):
        """Per-step scalar fallback (multi-key joins): tuples in, array out."""
        rows = self.run([tuple(row) for row in batch.tolist()], relations)
        return _rows_to_array(np, rows, batch.shape[1] + len(self.out_cols))

    def run_block(self, batch, relations, np, tracer=None):
        width = batch.shape[1] + len(self.out_cols)
        relation = relations(self.predicate)
        if relation is None or len(relation) == 0:
            return np.empty((0, width), dtype=np.int64)
        if relation.arity != self.arity:
            raise ArityError(
                f"atom {self.predicate}/{self.arity} does not match relation "
                f"arity {relation.arity}"
            )
        if len(self.key_cols) > 1:
            return self._run_block_scalar(batch, relations, np)
        table = self._build_vec(relation, np)
        if tracer is not None:
            tracer.count("probe_batches", 1)
        if table[0] == "scan":
            ext = table[1]
            if not len(ext):
                return np.empty((0, width), dtype=np.int64)
            # Cartesian expansion, binding-major like the scalar loop.
            out = np.concatenate(
                [
                    np.repeat(batch, len(ext), axis=0),
                    np.tile(ext, (len(batch), 1)),
                ],
                axis=1,
            )
        elif table[0] == "dense":
            _, base, lookup, starts, counts, ext = table
            probe = batch[:, self.key_slots[0]]
            # Dense remap probe: key ids index straight into the lookup
            # array (out-of-range and absent keys resolve to group -1).
            offsets = np.clip(probe - base, 0, len(lookup) - 1)
            slots = np.where(
                (probe >= base) & (probe - base < len(lookup)), lookup[offsets], -1
            )
            hits = np.nonzero(slots >= 0)[0]
            if not len(hits):
                return np.empty((0, width), dtype=np.int64)
            groups = slots[hits]
            group_counts = counts[groups]
            total = int(group_counts.sum())
            bound = batch[np.repeat(hits, group_counts)]
            # Concatenated-arange gather: starts repeated per match plus a
            # within-group offset enumerates every matching build row.
            ends = np.cumsum(group_counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                ends - group_counts, group_counts
            )
            out = np.concatenate(
                [bound, ext[np.repeat(starts[groups], group_counts) + within]],
                axis=1,
            )
        else:
            _, unique_keys, starts, counts, ext = table
            if not len(unique_keys):
                return np.empty((0, width), dtype=np.int64)
            probe = batch[:, self.key_slots[0]]
            # Whole-column hash probe: one searchsorted resolves every
            # binding's key against the sorted build keys.
            positions = np.searchsorted(unique_keys, probe)
            clipped = np.minimum(positions, len(unique_keys) - 1)
            hits = np.nonzero(unique_keys[clipped] == probe)[0]
            if not len(hits):
                return np.empty((0, width), dtype=np.int64)
            groups = clipped[hits]
            group_counts = counts[groups]
            total = int(group_counts.sum())
            bound = batch[np.repeat(hits, group_counts)]
            # Concatenated-arange gather: starts repeated per match plus a
            # within-group offset enumerates every matching build row.
            ends = np.cumsum(group_counts)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                ends - group_counts, group_counts
            )
            out = np.concatenate(
                [bound, ext[np.repeat(starts[groups], group_counts) + within]],
                axis=1,
            )
        if self.fused and len(out):
            out = _filter_block(np, out, self.fused, self.fused_specs)
        return out


class _KBind:
    """``=`` with one unbound side, over ids."""

    __slots__ = ("source_slot", "source_id")

    def __init__(self, source_slot: int | None, source_id: int | None) -> None:
        self.source_slot = source_slot
        self.source_id = source_id

    def run(self, batch: IntBatch, relations) -> IntBatch:
        if self.source_slot is not None:
            slot = self.source_slot
            return [binding + (binding[slot],) for binding in batch]
        extension = (self.source_id,)
        return [binding + extension for binding in batch]

    def run_block(self, batch, relations, np, tracer=None):
        if self.source_slot is not None:
            column = batch[:, self.source_slot : self.source_slot + 1]
        else:
            column = np.full((len(batch), 1), self.source_id, dtype=np.int64)
        return np.concatenate([batch, column], axis=1)


class _KFilter:
    """A standalone (unfused) comparison filter over the batch."""

    __slots__ = ("check", "spec")

    def __init__(self, check: RowFilter, spec=None) -> None:
        self.check = check
        self.spec = spec

    def run(self, batch: IntBatch, relations) -> IntBatch:
        check = self.check
        return [binding for binding in batch if check(binding)]

    def run_block(self, batch, relations, np, tracer=None):
        return _filter_block(np, batch, (self.check,), (self.spec,))


class _KAntiJoin:
    """A negated atom as an anti-join over id keys (memoized key set)."""

    __slots__ = (
        "predicate", "arity", "key_slots", "key_cols", "const_checks",
        "_cache_rel", "_cache_ver", "_cache_keys",
        "_vcache_rel", "_vcache_ver", "_vcache_keys",
    )

    def __init__(
        self,
        predicate: str,
        arity: int,
        key_slots: list[int],
        key_cols: list[int],
        const_checks: list[tuple[int, int]],
    ) -> None:
        self.predicate = predicate
        self.arity = arity
        self.key_slots = key_slots
        self.key_cols = key_cols
        self.const_checks = const_checks
        self._cache_rel: object = None
        self._cache_ver = -1
        self._cache_keys: set | None = None
        self._vcache_rel: object = None
        self._vcache_ver = -1
        self._vcache_keys: object = None

    def _keys(self, relation) -> set:
        version = relation.version
        if self._cache_rel is relation and self._cache_ver == version:
            return self._cache_keys  # type: ignore[return-value]
        key_cols = self.key_cols
        keys: set = set()
        for row in _filtered_rows(relation, self.const_checks, ()):
            keys.add(tuple(row[c] for c in key_cols))
        self._cache_rel = relation
        self._cache_ver = version
        self._cache_keys = keys
        return keys

    def run(self, batch: IntBatch, relations) -> IntBatch:
        relation = relations(self.predicate)
        if relation is None or len(relation) == 0:
            return batch
        if relation.arity != self.arity:
            raise ArityError(
                f"negated atom {self.predicate}/{self.arity} does not match "
                f"relation arity {relation.arity}"
            )
        keys = self._keys(relation)
        if not keys:
            return batch
        slots = self.key_slots
        return [
            binding
            for binding in batch
            if tuple(binding[s] for s in slots) not in keys
        ]

    def _keys_array(self, relation, np):
        """Sorted 1-D array of single-column anti-join keys (memoized)."""
        version = relation.version
        if self._vcache_rel is relation and self._vcache_ver == version:
            return self._vcache_keys
        keys = self._keys(relation)
        arr = np.fromiter((key[0] for key in keys), dtype=np.int64, count=len(keys))
        arr.sort()
        self._vcache_rel = relation
        self._vcache_ver = version
        self._vcache_keys = arr
        return arr

    def run_block(self, batch, relations, np, tracer=None):
        relation = relations(self.predicate)
        if relation is None or len(relation) == 0:
            return batch
        if relation.arity != self.arity:
            raise ArityError(
                f"negated atom {self.predicate}/{self.arity} does not match "
                f"relation arity {relation.arity}"
            )
        slots = self.key_slots
        if len(slots) == 1:
            keys = self._keys_array(relation, np)
            if not len(keys):
                return batch
            probe = batch[:, slots[0]]
            positions = np.searchsorted(keys, probe)
            clipped = np.minimum(positions, len(keys) - 1)
            return batch[keys[clipped] != probe]
        keys = self._keys(relation)
        if not keys:
            return batch
        if not slots:
            # A fully-constant negated atom: some build row matched the
            # constants, so every binding is excluded.
            return batch[:0]
        keep = [
            index
            for index, row in enumerate(batch.tolist())
            if tuple(row[s] for s in slots) not in keys
        ]
        if len(keep) == len(batch):
            return batch
        if not keep:
            return batch[:0]
        return batch[np.asarray(keep, dtype=np.intp)]


def _operand_reader(
    slot: int | None, const: Constant | None
) -> Callable[[tuple[int, ...]], Constant]:
    """Read a comparison operand as a *constant* from an id row."""
    if slot is not None:
        extern = SYMBOLS.extern
        return lambda row, s=slot: extern(row[s])
    return lambda row, c=const: c  # type: ignore[misc]


def _compare_filter(step: _Compare, skip_check: bool = False) -> RowFilter:
    """Specialize one comparison into an id-row filter closure.

    Equality/disequality compare ids directly (id-equality is
    constant-equality); order operators externalize to values and keep the
    incompatible-type error of the batch executor.  *skip_check* elides
    that comparability check — only set when the type analysis proved both
    operands homogeneous (both numeric, both str, or both bool), in which
    case the check can never fire.
    """
    op = step.op
    left_slot, right_slot = step.left_slot, step.right_slot
    if op in ("=", "!="):
        want_equal = op == "="
        if left_slot is not None and right_slot is not None:
            if want_equal:
                return lambda row: row[left_slot] == row[right_slot]
            return lambda row: row[left_slot] != row[right_slot]
        if left_slot is None and right_slot is None:
            result = (step.left_const == step.right_const) == want_equal
            return lambda row: result
        slot = left_slot if left_slot is not None else right_slot
        const = step.right_const if left_slot is not None else step.left_const
        sid = SYMBOLS.intern(const)  # type: ignore[arg-type]
        if want_equal:
            return lambda row: row[slot] == sid
        return lambda row: row[slot] != sid
    compare = _ORDER_OPS[op]
    left = _operand_reader(left_slot, step.left_const)
    right = _operand_reader(right_slot, step.right_const)
    if skip_check:
        return lambda row: compare(left(row).value, right(row).value)

    def check(row: tuple[int, ...]) -> bool:
        l, r = left(row), right(row)
        if not comparable(l, r):
            raise LogicError(
                f"cannot order-compare {l!r} and {r!r} (incompatible types)"
            )
        return compare(l.value, r.value)

    return check


def _vector_spec(step: _Compare):
    """A mask recipe for a comparison, or ``None`` when not vectorizable.

    Only id-domain ``=``/``!=`` vectorize (id-equality is constant
    equality); order comparisons externalize to values row-wise.  Spec
    shapes: ``("ss", want_equal, left_slot, right_slot)``,
    ``("sc", want_equal, slot, symbol_id)``, ``("const", keep_all)``.
    """
    if step.op not in ("=", "!="):
        return None
    want_equal = step.op == "="
    left_slot, right_slot = step.left_slot, step.right_slot
    if left_slot is not None and right_slot is not None:
        return ("ss", want_equal, left_slot, right_slot)
    if left_slot is None and right_slot is None:
        return ("const", (step.left_const == step.right_const) == want_equal)
    slot = left_slot if left_slot is not None else right_slot
    const = step.right_const if left_slot is not None else step.left_const
    return ("sc", want_equal, slot, SYMBOLS.intern(const))  # type: ignore[arg-type]


class ConjunctionKernel:
    """A kernelized physical plan: same schema, id-domain steps."""

    __slots__ = ("schema", "steps", "described")

    def __init__(
        self,
        schema: tuple[Variable, ...],
        steps: list,
        described: list[str],
    ) -> None:
        self.schema = schema
        self.steps = steps
        self.described = described

    def execute(self, relations, guard=None, tracer=None) -> IntBatch:
        """Run the kernel; guard checkpoints and ``join_probes`` accounting
        follow :meth:`ConjunctionPlan.execute` — one tick per step boundary,
        charged with the batch size."""
        batch: IntBatch = [()]
        for step in self.steps:
            if guard is not None:
                guard.tick(len(batch))
            if tracer is not None:
                tracer.count("join_probes", len(batch))
            batch = step.run(batch, relations)
            if not batch:
                return []
        return batch

    def execute_block(self, relations, np, guard=None, tracer=None):
        """Vector-path execution: the batch is a 2-D ``int64`` array.

        Guard ticks and ``join_probes`` accounting are identical to
        :meth:`execute` (same step boundaries, same batch sizes); each
        vectorized whole-column probe additionally counts one
        ``probe_batches``.
        """
        batch = np.zeros((1, 0), dtype=np.int64)
        for step in self.steps:
            size = len(batch)
            if guard is not None:
                guard.tick(size)
            if tracer is not None:
                tracer.count("join_probes", size)
            batch = step.run_block(batch, relations, np, tracer)
            if not len(batch):
                return batch
        return batch

    def execute_rows(self, relations, guard=None, tracer=None) -> IntBatch:
        """Run the kernel, via the vector path when the backend is on."""
        np = numpy_backend()
        if np is None:
            return self.execute(relations, guard, tracer)
        batch = self.execute_block(relations, np, guard, tracer)
        return [tuple(row) for row in batch.tolist()]


class RuleKernel:
    """A conjunction kernel plus the rule's head projection (over ids)."""

    __slots__ = ("rule", "kernel", "head_template", "_fast_project")

    def __init__(
        self,
        rule: Rule,
        kernel: ConjunctionKernel,
        head_template: list[tuple[bool, int]],
    ) -> None:
        self.rule = rule
        self.kernel = kernel
        self.head_template = head_template
        # The common all-variables head projects at C speed; heads with
        # constant arguments take the generic template loop.
        if all(not is_const for is_const, _ in head_template):
            self._fast_project = _projector([value for _, value in head_template])
        else:
            self._fast_project = None

    def execute(self, relations, guard=None, tracer=None) -> IntBatch:
        batch = self.kernel.execute(relations, guard, tracer)
        if not batch:
            return []
        project = self._fast_project
        if project is not None:
            return list(map(project, batch))
        template = self.head_template
        return [
            tuple(value if is_const else binding[value] for is_const, value in template)
            for binding in batch
        ]

    def execute_block(self, relations, np, guard=None, tracer=None):
        """Vector-path execution: head rows as a 2-D ``int64`` array."""
        batch = self.kernel.execute_block(relations, np, guard, tracer)
        template = self.head_template
        if not len(batch):
            return np.empty((0, len(template)), dtype=np.int64)
        if not template:
            return batch[:, :0]
        columns = [
            np.full((len(batch), 1), value, dtype=np.int64)
            if is_const
            else batch[:, value : value + 1]
            for is_const, value in template
        ]
        return columns[0] if len(columns) == 1 else np.concatenate(columns, axis=1)


def _strip_delta(predicate: str) -> str:
    if predicate.startswith(DELTA_PREFIX):
        return predicate[len(DELTA_PREFIX):]
    return predicate


def _rule_var_domains(rule: Rule, summary):
    """Per-variable abstract domains of one rule body under *summary*.

    Delta-prefixed body atoms (semi-naive rewrites) read the base
    predicate's column domains — a delta is a subset of the full relation
    — so delta variants share the original rule's memo entry, keyed on
    the delta-stripped rule text.  The memo lives on the summary itself:
    repeat compiles against an unchanged knowledge base skip the
    abstract evaluation entirely.

    Returns the *pre-guard* domains (positive atoms only): using the
    comparison-narrowed domains to justify skipping a comparison's own
    comparability check would be circular — ``X < 1`` narrows ``X`` to
    numeric even when the column also holds strings.
    """
    key = ("var_domains", str(rule).replace(DELTA_PREFIX, ""))
    cached = summary.memo.get(key)
    if cached is not None:
        return cached

    from repro.analysis.absint.typeinfer import rule_types

    types = summary.types

    class _TypesView:
        __slots__ = ()

        @staticmethod
        def get(predicate: str, default=None):
            return types.get(_strip_delta(predicate), default)

    domains = rule_types(rule, _TypesView()).atom_variables  # type: ignore[arg-type]
    summary.memo[key] = domains
    return domains


def _operand_domain(slot, const, schema, var_domains):
    from repro.analysis.absint.lattice import TOP, from_constant

    if slot is None:
        return from_constant(const)
    return var_domains.get(schema[slot], TOP)


def _order_check_skippable(left, right) -> bool:
    """Whether ``comparable()`` is provably redundant for these domains.

    Both-numeric passes the check and compares cleanly; both-str / both-bool
    likewise.  Mixed non-numeric kinds (str vs bool) would *pass*
    ``comparable()`` yet raise ``TypeError`` inside python's ``<``, so they
    must keep the guarded closure.
    """
    if left.numeric_only and right.numeric_only:
        return True
    for kind in ("str", "bool"):
        single = frozenset({kind})
        if left.kinds == single and right.kinds == single:
            return True
    return False


def kernelize_conjunction(
    plan: ConjunctionPlan, summary=None, var_domains=None
) -> ConjunctionKernel:
    """Lower a compiled plan into the integer domain, fusing filters.

    A comparison step whose predecessor (after lowering) is a join is
    folded into that join's probe loop; chains of comparisons after one
    join all fuse, since filters do not change the slot schema.

    With an :class:`~repro.analysis.absint.summary.AnalysisSummary` the
    lowering additionally specializes from proven facts: order comparisons
    whose operand domains (*var_domains*, keyed by schema variable) are
    homogeneous drop the per-row comparability check, and single-key joins
    whose key column domain is proven compact get the dense-remap hint.
    """
    steps: list = []
    described: list[str] = []
    for step, line in zip(plan.steps, plan.described):
        if isinstance(step, _HashJoin):
            kjoin = _KJoin(
                step.predicate,
                step.arity,
                step.key_slots,
                step.key_cols,
                [(col, SYMBOLS.intern(value)) for col, value in step.const_checks],
                step.dup_checks,
                step.out_cols,
            )
            if summary is not None and len(step.key_cols) == 1:
                compact = summary.compact_key(
                    _strip_delta(step.predicate), step.key_cols[0]
                )
                kjoin.dense_hint = compact is not None
            steps.append(kjoin)
            described.append(line)
        elif isinstance(step, _Bind):
            source_id = (
                None
                if step.source_const is None
                else SYMBOLS.intern(step.source_const)
            )
            steps.append(_KBind(step.source_slot, source_id))
            described.append(line)
        elif isinstance(step, _Compare):
            skip_check = False
            if var_domains is not None and step.op not in ("=", "!="):
                skip_check = _order_check_skippable(
                    _operand_domain(
                        step.left_slot, step.left_const, plan.schema, var_domains
                    ),
                    _operand_domain(
                        step.right_slot, step.right_const, plan.schema, var_domains
                    ),
                )
            check = _compare_filter(step, skip_check=skip_check)
            spec = _vector_spec(step)
            if steps and isinstance(steps[-1], _KJoin):
                steps[-1].fused.append(check)
                steps[-1].fused_specs.append(spec)
                described.append(f"{line} [fused]")
            else:
                steps.append(_KFilter(check, spec))
                described.append(line)
        elif isinstance(step, _AntiJoin):
            steps.append(
                _KAntiJoin(
                    step.predicate,
                    step.arity,
                    step.key_slots,
                    step.key_cols,
                    [(col, SYMBOLS.intern(value)) for col, value in step.const_checks],
                )
            )
            described.append(line)
        else:  # pragma: no cover - the four step kinds are exhaustive
            raise TypeError(f"cannot kernelize plan step {type(step).__name__}")
    return ConjunctionKernel(plan.schema, steps, described)


def compile_conjunction_kernel(
    conjuncts: Sequence[Atom],
    negated: Sequence[Atom] = (),
    estimate: CostEstimator | None = None,
    summary=None,
) -> ConjunctionKernel:
    """Compile a conjunction straight to an integer kernel.

    Ordering, slot layout, and safety checking are those of
    :func:`repro.engine.plan.compile_conjunction`; the result is its
    kernelized lowering (analysis-specialized when *summary* is given).
    """
    plan = compile_conjunction(conjuncts, negated, estimate=estimate)
    var_domains = None
    if summary is not None:
        var_domains = _rule_var_domains(
            Rule(Atom("__query", plan.schema), list(conjuncts), list(negated)),
            summary,
        )
    return kernelize_conjunction(plan, summary=summary, var_domains=var_domains)


def compile_rule_kernel(
    rule: Rule, estimate: CostEstimator | None = None, summary=None
) -> RuleKernel:
    """Compile one rule to an integer kernel with head projection."""
    plan: RulePlan = compile_rule(rule, estimate=estimate)
    template: list[tuple[bool, int]] = [
        (True, SYMBOLS.intern(value)) if is_const else (is_const, value)  # type: ignore[arg-type]
        for is_const, value in plan.head_template
    ]
    var_domains = _rule_var_domains(rule, summary) if summary is not None else None
    return RuleKernel(
        rule,
        kernelize_conjunction(plan.plan, summary=summary, var_domains=var_domains),
        template,
    )


def substitutions_from_kernel_batch(kernel: ConjunctionKernel, batch: IntBatch):
    """Externalize an id batch back into :class:`Substitution` objects."""
    from repro.logic.substitution import Substitution

    schema = kernel.schema
    extern_row = SYMBOLS.extern_row
    for binding in batch:
        yield Substitution(dict(zip(schema, extern_row(binding))))
