"""Semi-naive bottom-up evaluation of the IDB.

The classic deductive-database fixpoint: predicates are evaluated stratum by
stratum (strongly connected components of the dependency graph in
topological order); within a recursive stratum, each iteration joins every
rule against the *delta* (facts new in the previous iteration) in one body
position at a time, so no derivation is recomputed.

Evaluation is *relevance-restricted*: only predicates the query (transitively)
depends on are materialised.

Three executors drive rule bodies (the ``executor`` knob; ``None`` picks
the process default, normally ``"kernel"`` — see
:func:`repro.engine.plan.default_executor` and the ``REPRO_EXECUTOR``
environment variable):

* ``"batch"`` — the set-at-a-time hash-join executor of
  :mod:`repro.engine.plan`: each rule body is compiled once per
  ``(rule, delta-position)`` into a physical plan, cached for the lifetime
  of the stratum evaluation, and executed over whole relations;
* ``"nested"`` — the tuple-at-a-time nested-loop reference executor of
  :mod:`repro.engine.joins`; the join order is still computed once per
  ``(rule, delta-position)`` rather than on every delta iteration.
* ``"kernel"`` (default) — the integer-interned kernels of
  :mod:`repro.engine.kernels`: the same compiled plans lowered to symbol
  ids, with the whole stratum fixpoint running over id tuples and the
  results externalized back into relations when the stratum completes.
  When the numpy columnar backend is on (``REPRO_COLUMNAR_BACKEND=numpy``)
  the fixpoint additionally runs *vectorized*: deltas stay 2-D ``int64``
  arrays between iterations, probes resolve whole columns at a time, and
  per-iteration dedup is one batch ``np.unique`` pass
  (counted by the ``probe_batches`` / ``dedup_batch_rows`` tracer
  counters) followed by a membership check against the accumulated table.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.errors import SafetyError
from repro.catalog.columnar import numpy_backend
from repro.catalog.database import KnowledgeBase
from repro.catalog.relation import Relation, Row
from repro.engine.guard import ResourceGuard
from repro.engine.joins import bind_row, join_conjunction, order_conjuncts, relation_cost_estimator
from repro.engine.plan import (
    DELTA_PREFIX as _DELTA_PREFIX,
    RulePlan,
    analysis_estimator,
    compile_rule,
    resolve_executor,
)
from repro.engine.safety import check_rule_safety
from repro.obs.trace import traced_span
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule
from repro.logic.substitution import Substitution
from repro.logic.terms import is_constant


class SemiNaiveEngine:
    """Bottom-up evaluator producing materialised IDB relations.

    Parameters
    ----------
    kb:
        The knowledge base to evaluate.
    max_derived_facts:
        Legacy fact budget; shorthand for ``guard=ResourceGuard(max_facts=N)``
        (ignored when an explicit *guard* is given).  Exceeding it raises
        :class:`~repro.errors.EvaluationLimitError`.
    executor:
        ``"batch"`` for the set-at-a-time hash-join executor,
        ``"nested"`` for the tuple-at-a-time reference executor,
        ``"kernel"`` for the integer-interned kernel executor;
        ``None`` (the default) resolves via
        :func:`repro.engine.plan.default_executor` (normally ``kernel``,
        overridable with ``REPRO_EXECUTOR``).
    guard:
        A :class:`~repro.engine.guard.ResourceGuard` governing the whole
        evaluation (deadline, fact/step/iteration budgets, cancellation).
    tracer:
        A :class:`~repro.obs.trace.Tracer` recording stratum / iteration /
        rule spans with ``facts_derived``, ``delta_rows`` and ``join_probes``
        counters.  ``None`` (the default) keeps the hot path untraced.
    analysis:
        Analysis-informed planning control: ``None`` (the default) follows
        the ``REPRO_PLAN_ANALYSIS`` flag, ``False`` disables it, ``True``
        forces it, and a prebuilt
        :class:`~repro.analysis.absint.summary.AnalysisSummary` is used
        directly.  When enabled, join ordering falls back to abstract
        cardinality estimates for not-yet-materialised IDB relations and
        the kernel executor specializes comparisons/joins from inferred
        column domains.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        max_derived_facts: int | None = None,
        executor: str | None = None,
        guard: ResourceGuard | None = None,
        tracer=None,
        analysis=None,
    ) -> None:
        executor = resolve_executor(executor)
        if max_derived_facts is not None and max_derived_facts < 1:
            raise ValueError(
                f"max_derived_facts must be at least 1, got {max_derived_facts!r} "
                "(omit the argument to disable the budget)"
            )
        if guard is None and max_derived_facts is not None:
            guard = ResourceGuard(max_facts=max_derived_facts)
        self._kb = kb
        self._guard = guard
        self._tracer = tracer
        self._executor = executor
        #: Analysis-informed planning: ``None`` resolves via the
        #: ``REPRO_PLAN_ANALYSIS`` flag, ``False`` disables, ``True`` forces,
        #: and an :class:`AnalysisSummary` instance is used as-is.
        self._analysis = analysis
        self._derived: dict[str, Relation] = {}
        self._delta: dict[str, Relation] = {}
        self._evaluated: set[str] = set()
        #: Per-stratum cache: (rule index, delta position) -> compiled plan
        #: (batch executor), pre-ordered body (nested executor), or lowered
        #: integer kernel (kernel executor).
        self._plans: dict[tuple[int, int], RulePlan] = {}
        self._orders: dict[tuple[int, int], list[Atom]] = {}
        self._kernels: dict[tuple[int, int], object] = {}

    # -- public API ---------------------------------------------------------------

    def evaluate(self, predicates: Sequence[str] | None = None) -> dict[str, Relation]:
        """Materialise the requested IDB predicates (all, when ``None``).

        Returns a mapping from predicate name to its derived relation.
        Repeated calls reuse earlier materialisations.
        """
        kb = self._kb
        if predicates is None:
            wanted = set(kb.idb_predicates())
        else:
            wanted = {p for p in predicates if kb.is_idb(p)}
        graph = kb.dependency_graph()
        relevant = set(wanted)
        for predicate in wanted:
            relevant.update(p for p in graph.dependencies(predicate) if kb.is_idb(p))
        todo = relevant - self._evaluated
        if todo:
            for stratum in graph.evaluation_strata(set(kb.idb_predicates())):
                members = [p for p in stratum if p in todo]
                if members:
                    evaluated = set(stratum) & relevant
                    with traced_span(
                        self._tracer, "stratum", predicates=sorted(evaluated)
                    ):
                        self._evaluate_stratum(evaluated)
                    self._evaluated.update(evaluated)
        return {p: self._relation(p) for p in wanted}

    def derived_relation(self, predicate: str) -> Relation:
        """The materialised relation for one IDB predicate (evaluating it)."""
        self.evaluate([predicate])
        return self._relation(predicate)

    def fact_count(self) -> int:
        """Total number of derived facts materialised so far."""
        return sum(len(r) for r in self._derived.values())

    def partial_relation(self, predicate: str) -> Relation:
        """The current (possibly incomplete) materialisation of a predicate.

        Used by degrade-mode callers after a budget trips mid-fixpoint: the
        rows present are genuinely derivable (bottom-up derivation is
        monotone), so the partial relation is a sound under-approximation.
        """
        return self._relation(predicate)

    @property
    def executor(self) -> str:
        """The executor this engine evaluates rule bodies with."""
        return self._executor

    @property
    def guard(self) -> ResourceGuard | None:
        """The resource guard governing this engine (``None`` = unbounded)."""
        return self._guard

    # -- internals -------------------------------------------------------------------

    def _relation(self, predicate: str) -> Relation:
        if predicate not in self._derived:
            arity = self._kb.schema(predicate).arity if self._kb.has_predicate(predicate) else 0
            self._derived[predicate] = Relation(arity)
        return self._derived[predicate]

    def _relation_view(self, predicate: str) -> Relation | None:
        """The relation an atom of *predicate* currently reads (or ``None``)."""
        if predicate.startswith(_DELTA_PREFIX):
            return self._delta.get(predicate[len(_DELTA_PREFIX):])
        if self._kb.is_edb(predicate):
            return self._kb.relation(predicate)
        if self._kb.is_idb(predicate):
            return self._relation(predicate)
        return None

    def _analysis_summary(self):
        """Resolve (and pin) the analysis summary, or ``None`` when off.

        The summary itself is cached per knowledge base keyed on
        ``(rules_version, EDB versions)`` (see
        :func:`repro.analysis.absint.summary.summary_for`), so resolving it
        here is a dictionary hit for every repeat evaluation.
        """
        analysis = self._analysis
        if analysis is False:
            return None
        if analysis is None or analysis is True:
            from repro.analysis.absint.summary import planning_enabled, summary_for

            if analysis is None and not planning_enabled():
                self._analysis = False
                return None
            summary = summary_for(self._kb)
            self._analysis = summary
            return summary
        return analysis

    def _cost_estimator(self, relation_for):
        """The join-order estimator: live stats + analysis fallback."""
        summary = self._analysis_summary()
        if summary is None:
            return relation_cost_estimator(relation_for)
        return analysis_estimator(relation_for, summary)

    def _resolver(self, atom: Atom, theta: Substitution) -> Iterator[Substitution]:
        """Resolve a positive atom against EDB, derived, or delta relations."""
        relation = self._relation_view(atom.predicate)
        if relation is None:
            return  # undefined predicate: empty extension
        pattern = [arg if is_constant(arg) else None for arg in atom.args]
        for row in relation.lookup(pattern):
            extended = bind_row(atom, row, theta)
            if extended is not None:
                yield extended

    def _head_row(self, rule: Rule, theta: Substitution) -> Row:
        head = theta.apply(rule.head)
        if not head.is_ground():
            raise SafetyError(f"derived head is not ground: {head} (rule {rule})")
        return tuple(head.args)  # type: ignore[return-value]

    def _negatives_absent(self, rule: Rule, theta: Substitution) -> bool:
        """Whether every negated body atom has no matching stored/derived row.

        Stratification guarantees the negated predicates' relations are
        complete by the time the rule fires (their strata come first).
        """
        for atom in rule.negated:
            instantiated = theta.apply(atom)
            if not instantiated.is_ground():
                raise SafetyError(
                    f"negated atom {instantiated} is not ground at evaluation time"
                )
            predicate = instantiated.predicate
            if self._kb.is_edb(predicate):
                relation = self._kb.relation(predicate)
            elif self._kb.is_idb(predicate):
                relation = self._relation(predicate)
            else:
                continue  # undefined predicate: trivially absent
            if next(relation.lookup(list(instantiated.args)), None) is not None:
                return False
        return True

    def _fire_rule(self, rule: Rule, plan_key: tuple[int, int]) -> list[Row]:
        """All head rows derivable from one rule under current relations.

        The join order is cardinality-aware and computed once per
        ``(rule, delta-position)`` for the stratum; with the batch executor
        the whole body runs as cached-plan hash joins.
        """
        guard = self._guard
        tracer = self._tracer
        if self._executor == "batch":
            plan = self._plans.get(plan_key)
            if plan is None:
                estimate = self._cost_estimator(self._relation_view)
                plan = compile_rule(rule, estimate=estimate)
                self._plans[plan_key] = plan
            return plan.execute(self._relation_view, guard, tracer)
        ordered = self._orders.get(plan_key)
        if ordered is None:
            estimate = self._cost_estimator(self._relation_view)
            ordered = order_conjuncts(rule.body, estimate=estimate)
            self._orders[plan_key] = ordered
        rows: list[Row] = []
        solutions = 0
        for theta in join_conjunction(self._resolver, ordered, reorder=False):
            solutions += 1
            if guard is not None:
                guard.tick()
            if rule.negated and not self._negatives_absent(rule, theta):
                continue
            rows.append(self._head_row(rule, theta))
        if tracer is not None and solutions:
            tracer.count("join_probes", solutions)
        return rows

    def _evaluate_stratum(self, stratum: set[str]) -> None:
        if self._executor == "kernel":
            np = numpy_backend()
            if np is not None:
                self._evaluate_stratum_kernel_vec(stratum, np)
            else:
                self._evaluate_stratum_kernel(stratum)
            return
        kb = self._kb
        rules = [r for p in sorted(stratum) for r in kb.rules_for(p)]
        for rule in rules:
            check_rule_safety(rule)
        # Plans are cached for the lifetime of this stratum evaluation.
        self._plans = {}
        self._orders = {}

        # Initial round: full evaluation (recursive atoms see empty relations).
        # Rows are materialised before insertion: a rule like a permutation
        # rule reads the very relation its head writes.
        guard = self._guard
        tracer = self._tracer
        delta_rows: dict[str, set[Row]] = {p: set() for p in stratum}
        for rule_index, rule in enumerate(rules):
            with traced_span(tracer, "rule", rule=str(rule), phase="initial"):
                relation = self._relation(rule.head.predicate)
                inserted = 0
                for row in self._fire_rule(rule, (rule_index, -1)):
                    if relation.insert(row):
                        delta_rows[rule.head.predicate].add(row)
                        inserted += 1
                if guard is not None and inserted:
                    guard.count_facts(inserted)
                if tracer is not None and inserted:
                    tracer.count("facts_derived", inserted)

        recursive_rules = [
            (index, rule, [i for i, b in enumerate(rule.body) if b.predicate in stratum])
            for index, rule in enumerate(rules)
        ]
        recursive_rules = [(i, r, occs) for i, r, occs in recursive_rules if occs]
        if not recursive_rules:
            return

        # Pre-build each rule's delta rewritings once; the per-iteration work
        # is pure plan execution.
        rewritten_rules: list[tuple[int, int, Rule]] = []
        for rule_index, rule, occurrences in recursive_rules:
            for position in occurrences:
                body = list(rule.body)
                original = body[position]
                body[position] = Atom(_DELTA_PREFIX + original.predicate, original.args)
                rewritten_rules.append((rule_index, position, rule.with_body(body)))

        iteration = 0
        while any(delta_rows.values()):
            iteration += 1
            if guard is not None:
                guard.iteration()
            with traced_span(tracer, "iteration", index=iteration):
                if tracer is not None:
                    tracer.count(
                        "delta_rows", sum(len(rows) for rows in delta_rows.values())
                    )
                self._delta = {
                    p: Relation(self._relation(p).arity, rows)
                    for p, rows in delta_rows.items()
                }
                new_rows: dict[str, set[Row]] = {p: set() for p in stratum}
                for rule_index, position, rewritten in rewritten_rules:
                    with traced_span(
                        tracer,
                        "rule",
                        rule=str(rules[rule_index]),
                        delta_position=position,
                    ):
                        target = new_rows[rewritten.head.predicate]
                        before = len(target)
                        relation = self._relation(rewritten.head.predicate)
                        for row in self._fire_rule(rewritten, (rule_index, position)):
                            if row not in relation:
                                target.add(row)
                        if tracer is not None and len(target) != before:
                            tracer.count("facts_derived", len(target) - before)
                for predicate, rows in new_rows.items():
                    self._relation(predicate).insert_many(rows)
                    if guard is not None and rows:
                        guard.count_facts(len(rows))
                delta_rows = new_rows
                self._delta = {}

    def _evaluate_stratum_kernel(self, stratum: set[str]) -> None:
        """Integer-domain stratum fixpoint for ``executor="kernel"``.

        Mirrors :meth:`_evaluate_stratum` step for step — same initial
        round, same delta rewriting, same guard/tracer accounting — but
        the stratum's derived and delta fact sets live as
        :class:`~repro.engine.kernels.IntTable` id tuples for the whole
        fixpoint: no per-row coercion, journaling, or constant hashing on
        the hot path.  Rows are externalized back to constants and
        bulk-inserted into the derived relations when the stratum finishes.
        The flush runs on the way out even when a budget trips mid-fixpoint
        (bottom-up derivation is monotone, so the partial table is a sound
        under-approximation — the same degrade contract as the other
        executors).
        """
        from repro.engine.kernels import IntTable, RuleKernel, compile_rule_kernel

        kb = self._kb
        rules = [r for p in sorted(stratum) for r in kb.rules_for(p)]
        for rule in rules:
            check_rule_safety(rule)
        self._kernels = {}
        guard = self._guard
        tracer = self._tracer
        tables = {p: IntTable(self._relation(p).arity) for p in stratum}
        kdelta: dict[str, IntTable] = {}

        def kview(predicate: str):
            """Kernel-side relation view: IntTables for in-flight predicates,
            the ordinary relations (interned on demand) for everything else."""
            if predicate.startswith(_DELTA_PREFIX):
                return kdelta.get(predicate[len(_DELTA_PREFIX):])
            table = tables.get(predicate)
            if table is not None:
                return table
            return self._relation_view(predicate)

        def fire(rule: Rule, plan_key: tuple[int, int]) -> list[tuple[int, ...]]:
            kernel = self._kernels.get(plan_key)
            if kernel is None:
                estimate = self._cost_estimator(kview)
                kernel = compile_rule_kernel(
                    rule, estimate=estimate, summary=self._analysis_summary()
                )
                self._kernels[plan_key] = kernel
            assert isinstance(kernel, RuleKernel)
            return kernel.execute(kview, guard, tracer)

        try:
            delta_sets: dict[str, set[tuple[int, ...]]] = {p: set() for p in stratum}
            for rule_index, rule in enumerate(rules):
                with traced_span(tracer, "rule", rule=str(rule), phase="initial"):
                    table = tables[rule.head.predicate]
                    inserted = 0
                    for irow in fire(rule, (rule_index, -1)):
                        if table.add(irow):
                            delta_sets[rule.head.predicate].add(irow)
                            inserted += 1
                    if guard is not None and inserted:
                        guard.count_facts(inserted)
                    if tracer is not None and inserted:
                        tracer.count("facts_derived", inserted)

            recursive_rules = [
                (index, rule, [i for i, b in enumerate(rule.body) if b.predicate in stratum])
                for index, rule in enumerate(rules)
            ]
            recursive_rules = [(i, r, occs) for i, r, occs in recursive_rules if occs]
            if not recursive_rules:
                return

            rewritten_rules: list[tuple[int, int, Rule]] = []
            for rule_index, rule, occurrences in recursive_rules:
                for position in occurrences:
                    body = list(rule.body)
                    original = body[position]
                    body[position] = Atom(_DELTA_PREFIX + original.predicate, original.args)
                    rewritten_rules.append((rule_index, position, rule.with_body(body)))

            iteration = 0
            while any(delta_sets.values()):
                iteration += 1
                if guard is not None:
                    guard.iteration()
                with traced_span(tracer, "iteration", index=iteration):
                    if tracer is not None:
                        tracer.count(
                            "delta_rows", sum(len(rows) for rows in delta_sets.values())
                        )
                    kdelta = {
                        p: IntTable(tables[p].arity, list(rows))
                        for p, rows in delta_sets.items()
                    }
                    new_sets: dict[str, set[tuple[int, ...]]] = {p: set() for p in stratum}
                    for rule_index, position, rewritten in rewritten_rules:
                        with traced_span(
                            tracer,
                            "rule",
                            rule=str(rules[rule_index]),
                            delta_position=position,
                        ):
                            target = new_sets[rewritten.head.predicate]
                            before = len(target)
                            index = tables[rewritten.head.predicate].index
                            for irow in fire(rewritten, (rule_index, position)):
                                if irow not in index:
                                    target.add(irow)
                            if tracer is not None and len(target) != before:
                                tracer.count("facts_derived", len(target) - before)
                    for predicate, rows in new_sets.items():
                        # Rows were checked against the table while firing,
                        # and the per-predicate set already deduplicated
                        # across rules: extend without re-probing.
                        tables[predicate].extend_new(rows)
                        if guard is not None and rows:
                            guard.count_facts(len(rows))
                    delta_sets = new_sets
                    kdelta = {}
        finally:
            # Externalize once per stratum: id tuples -> constant rows.
            # Runs on the exception path too, so a tripped budget leaves the
            # usual sound partial materialisation behind.
            for predicate, table in tables.items():
                if table.rows:
                    self._relation(predicate).load_interned(table.rows)

    def _evaluate_stratum_kernel_vec(self, stratum: set[str], np) -> None:
        """Vectorized kernel fixpoint: deltas stay 2-D ``int64`` arrays.

        Mirrors :meth:`_evaluate_stratum_kernel` — same rewriting, same
        guard/tracer accounting at the same boundaries — but rule firing
        runs :meth:`RuleKernel.execute_block` (whole-column probes) and the
        per-round duplicate elimination is a batch ``np.unique`` pass
        (``dedup_batch_rows`` counts rows entering it) followed by one
        membership check per *unique* row — keyed by the row's raw bytes,
        never materialized as a tuple — against the accumulated fact set.
        Derived rows stay 2-D arrays for the entire stratum
        (:class:`~repro.engine.kernels.GrowTable`) and flush through
        :meth:`~repro.catalog.relation.Relation.load_interned_block` in one
        flat externalization pass, so python-level work scales with new
        facts, not raw join output.  The flush still runs on the way out
        when a budget trips mid-fixpoint (same sound-under-approximation
        contract as the scalar paths).
        """
        from repro.engine.kernels import (
            ArrayTable,
            GrowTable,
            RuleKernel,
            _void_rows,
            compile_rule_kernel,
            unique_block,
        )

        kb = self._kb
        rules = [r for p in sorted(stratum) for r in kb.rules_for(p)]
        for rule in rules:
            check_rule_safety(rule)
        self._kernels = {}
        guard = self._guard
        tracer = self._tracer
        tables = {p: GrowTable(self._relation(p).arity, np) for p in stratum}
        # Membership is tracked per predicate as a set of raw row bytes
        # (the same void view np.unique sorts), mirroring IntTable.index
        # without ever building an id tuple.  (A fully vectorized variant
        # — sorted void chunks probed via searchsorted — measured slower:
        # per-iteration numpy call overhead on small deltas outweighs
        # C-level set lookups on interned bytes.)
        seen: dict[str, set[bytes]] = {p: set() for p in stratum}
        kdelta: dict[str, ArrayTable] = {}

        def kview(predicate: str):
            if predicate.startswith(_DELTA_PREFIX):
                return kdelta.get(predicate[len(_DELTA_PREFIX):])
            table = tables.get(predicate)
            if table is not None:
                return table
            return self._relation_view(predicate)

        def fire(rule: Rule, plan_key: tuple[int, int]):
            kernel = self._kernels.get(plan_key)
            if kernel is None:
                estimate = self._cost_estimator(kview)
                kernel = compile_rule_kernel(
                    rule, estimate=estimate, summary=self._analysis_summary()
                )
                self._kernels[plan_key] = kernel
            assert isinstance(kernel, RuleKernel)
            return kernel.execute_block(kview, np, guard, tracer)

        def screen(predicate: str, fired, extra_seen=None):
            """Batch-dedup fired head rows; ``(array, keys)`` of new rows."""
            if tracer is not None:
                tracer.count("dedup_batch_rows", len(fired))
            uniq = unique_block(np, fired)
            if uniq.shape[1]:
                keys = _void_rows(np, uniq).tolist()
            else:
                keys = [b""] * len(uniq)
            old = seen[predicate]
            if extra_seen:
                keep = [
                    i for i, key in enumerate(keys)
                    if key not in old and key not in extra_seen
                ]
            else:
                keep = [i for i, key in enumerate(keys) if key not in old]
            if not keep:
                return uniq[:0], []
            if len(keep) == len(keys):
                return uniq, keys
            return (
                uniq[np.asarray(keep, dtype=np.intp)],
                [keys[i] for i in keep],
            )

        try:
            # deltas: predicate -> list of disjoint new-row arrays.
            deltas: dict[str, list] = {p: [] for p in stratum}
            for rule_index, rule in enumerate(rules):
                with traced_span(tracer, "rule", rule=str(rule), phase="initial"):
                    fired = fire(rule, (rule_index, -1))
                    if len(fired):
                        new_arr, new_keys = screen(rule.head.predicate, fired)
                        if new_keys:
                            seen[rule.head.predicate].update(new_keys)
                            tables[rule.head.predicate].extend_block(new_arr)
                            deltas[rule.head.predicate].append(new_arr)
                            if guard is not None:
                                guard.count_facts(len(new_keys))
                            if tracer is not None:
                                tracer.count("facts_derived", len(new_keys))

            recursive_rules = [
                (index, rule, [i for i, b in enumerate(rule.body) if b.predicate in stratum])
                for index, rule in enumerate(rules)
            ]
            recursive_rules = [(i, r, occs) for i, r, occs in recursive_rules if occs]
            if not recursive_rules:
                return

            rewritten_rules: list[tuple[int, int, Rule]] = []
            for rule_index, rule, occurrences in recursive_rules:
                for position in occurrences:
                    body = list(rule.body)
                    original = body[position]
                    body[position] = Atom(_DELTA_PREFIX + original.predicate, original.args)
                    rewritten_rules.append((rule_index, position, rule.with_body(body)))

            iteration = 0
            while any(parts for parts in deltas.values()):
                iteration += 1
                if guard is not None:
                    guard.iteration()
                with traced_span(tracer, "iteration", index=iteration):
                    if tracer is not None:
                        tracer.count(
                            "delta_rows",
                            sum(len(a) for parts in deltas.values() for a in parts),
                        )
                    kdelta = {
                        p: ArrayTable(
                            tables[p].arity,
                            parts[0] if len(parts) == 1 else np.concatenate(parts),
                            np,
                        )
                        for p, parts in deltas.items()
                        if parts
                    }
                    new_parts: dict[str, list] = {p: [] for p in stratum}
                    new_seen: dict[str, set] = {p: set() for p in stratum}
                    for rule_index, position, rewritten in rewritten_rules:
                        with traced_span(
                            tracer,
                            "rule",
                            rule=str(rules[rule_index]),
                            delta_position=position,
                        ):
                            fired = fire(rewritten, (rule_index, position))
                            if len(fired):
                                predicate = rewritten.head.predicate
                                new_arr, new_keys = screen(
                                    predicate, fired, new_seen[predicate]
                                )
                                if new_keys:
                                    new_seen[predicate].update(new_keys)
                                    new_parts[predicate].append(new_arr)
                                    if tracer is not None:
                                        tracer.count("facts_derived", len(new_keys))
                    for predicate, parts in new_parts.items():
                        if parts:
                            # Tables extend only at the iteration boundary —
                            # the same visibility the scalar paths give rules
                            # within one iteration, and one build-side
                            # version bump per iteration instead of one per
                            # rule.
                            added = 0
                            table = tables[predicate]
                            for part in parts:
                                table.extend_block(part)
                                added += len(part)
                            seen[predicate].update(new_seen[predicate])
                            if guard is not None:
                                guard.count_facts(added)
                    deltas = new_parts
                    kdelta = {}
        finally:
            for predicate, table in tables.items():
                if len(table):
                    self._relation(predicate).load_interned_block(table.as_array(np))
