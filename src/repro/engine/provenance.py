"""Proof trees: why is a fact derivable?

The paper's taxonomy (section 1) distinguishes three query-answering
mechanisms; this module supports the second ("intensional" answers that mix
knowledge and data) by materialising *derivations*: a
:class:`ProofNode` tree shows, for a derivable ground atom, which rule fired
and how each body atom is in turn supported, down to stored facts and
built-in comparisons.

``explain(kb, atom)`` proves one ground instance; ``explain_all`` yields a
proof per answer row of a query.  Proof search is top-down with on-path
loop avoidance, so it terminates on recursive predicates (every derivable
fact has a finite derivation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import EngineError
from repro.catalog.database import KnowledgeBase
from repro.engine.evaluate import retrieve
from repro.engine.joins import bind_row, join_conjunction
from repro.engine.seminaive import SemiNaiveEngine
from repro.logic.atoms import Atom
from repro.logic.builtins import evaluate_comparison
from repro.logic.clauses import Rule
from repro.logic.rename import VariableRenamer
from repro.logic.substitution import Substitution
from repro.logic.terms import is_constant
from repro.logic.unify import unify

#: How a proof node is justified.
KIND_FACT = "fact"            # stored EDB row
KIND_BUILTIN = "builtin"      # true ground comparison
KIND_RULE = "rule"            # derived by an IDB rule
KIND_ABSENT = "absent"        # negated atom: no matching row exists


@dataclass
class ProofNode:
    """One node of a derivation tree."""

    atom: Atom
    kind: str
    rule: Rule | None = None
    children: list["ProofNode"] = field(default_factory=list)

    def depth(self) -> int:
        """Height of the proof tree."""
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def size(self) -> int:
        """Number of nodes in the proof tree."""
        return 1 + sum(child.size() for child in self.children)

    def render(self, indent: str = "") -> str:
        """An ASCII rendering of the proof."""
        if self.kind == KIND_FACT:
            label = f"{self.atom}   [stored fact]"
        elif self.kind == KIND_BUILTIN:
            label = f"{self.atom}   [built-in]"
        elif self.kind == KIND_ABSENT:
            label = f"not {self.atom}   [no matching row]"
        else:
            label = f"{self.atom}   [by: {self.rule}]"
        lines = [f"{indent}{label}"]
        for child in self.children:
            lines.append(child.render(indent + "    "))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class ProofSearch:
    """Top-down proof construction over a knowledge base.

    Body solutions come from the bottom-up engine's materialised relations
    (complete and cheap to probe); the tree structure comes from replaying
    rule applications over those relations.
    """

    def __init__(self, kb: KnowledgeBase) -> None:
        self._kb = kb
        self._engine = SemiNaiveEngine(kb)
        self._renamer = VariableRenamer()

    def _relation_for(self, predicate: str):
        if self._kb.is_edb(predicate):
            return self._kb.relation(predicate)
        if self._kb.is_idb(predicate):
            return self._engine.derived_relation(predicate)
        return None

    def _resolver(self, atom: Atom, theta: Substitution) -> Iterator[Substitution]:
        relation = self._relation_for(atom.predicate)
        if relation is None:
            return
        pattern = [arg if is_constant(arg) else None for arg in atom.args]
        for row in relation.lookup(pattern):
            extended = bind_row(atom, row, theta)
            if extended is not None:
                yield extended

    def prove(self, atom: Atom, _path: frozenset[Atom] = frozenset()) -> ProofNode | None:
        """A proof of a ground atom, or ``None`` when it is not derivable."""
        if not atom.is_ground():
            raise EngineError(f"can only explain ground atoms, got {atom}")
        if atom.is_comparison():
            return ProofNode(atom, KIND_BUILTIN) if evaluate_comparison(atom) else None
        predicate = atom.predicate
        if self._kb.is_edb(predicate):
            relation = self._kb.relation(predicate)
            if next(relation.lookup(list(atom.args)), None) is not None:
                return ProofNode(atom, KIND_FACT)
            return None
        if not self._kb.is_idb(predicate):
            return None
        if atom in _path:
            return None  # avoid cyclic justification; another branch exists
        derived = self._engine.derived_relation(predicate)
        if next(derived.lookup(list(atom.args)), None) is None:
            return None
        path = _path | {atom}
        for rule in self._kb.rules_for(predicate):
            renamed = self._renamer.rename_rule(rule)
            theta = unify(renamed.head, atom)
            if theta is None:
                continue
            for solution in join_conjunction(
                self._resolver, theta.apply_all(renamed.body), theta
            ):
                if renamed.negated and not self._negatives_absent(renamed, solution):
                    continue
                children = []
                failed = False
                for body_atom in solution.apply_all(renamed.body):
                    child = self.prove(body_atom, path)
                    if child is None:
                        failed = True
                        break
                    children.append(child)
                if failed:
                    continue
                for negated_atom in solution.apply_all(renamed.negated):
                    children.append(ProofNode(negated_atom, KIND_ABSENT))
                return ProofNode(atom, KIND_RULE, rule=rule, children=children)
        return None

    def _negatives_absent(self, rule: Rule, theta: Substitution) -> bool:
        for atom in rule.negated:
            instantiated = theta.apply(atom)
            relation = self._relation_for(instantiated.predicate)
            if relation is None:
                continue
            if next(relation.lookup(list(instantiated.args)), None) is not None:
                return False
        return True


@dataclass
class Explanation:
    """The result of an ``explain`` statement: proofs per answer."""

    subject: Atom
    qualifier: tuple[Atom, ...]
    proofs: list[tuple[Atom, ProofNode]] = field(default_factory=list)

    def __bool__(self) -> bool:
        return bool(self.proofs)

    def __len__(self) -> int:
        return len(self.proofs)

    def __str__(self) -> str:
        if not self.proofs:
            return f"{self.subject} is not derivable"
        sections = []
        for _atom, proof in self.proofs:
            sections.append(proof.render())
        return "\n\n".join(sections)


def explain_statement(
    kb: KnowledgeBase,
    subject: Atom,
    qualifier: Sequence[Atom] = (),
    limit: int | None = 10,
) -> Explanation:
    """Evaluate ``explain subject [where qualifier]``.

    A ground subject without qualifier yields at most one proof; otherwise
    each answer row is explained (capped by *limit*).
    """
    if subject.is_ground() and not qualifier:
        proof = ProofSearch(kb).prove(subject)
        proofs = [(subject, proof)] if proof is not None else []
        return Explanation(subject, (), proofs)
    return Explanation(
        subject, tuple(qualifier), explain_all(kb, subject, qualifier, limit=limit)
    )


def explain(kb: KnowledgeBase, atom: Atom) -> ProofNode | None:
    """A derivation tree for a ground atom (``None`` if not derivable)."""
    return ProofSearch(kb).prove(atom)


def explain_all(
    kb: KnowledgeBase,
    subject: Atom,
    qualifier: Sequence[Atom] = (),
    limit: int | None = None,
) -> list[tuple[Atom, ProofNode]]:
    """One proof per answer of ``retrieve subject where qualifier``.

    Returns (ground subject instance, proof) pairs; ``limit`` caps how many
    answers are explained.
    """
    search = ProofSearch(kb)
    result = retrieve(kb, subject, qualifier)
    proofs: list[tuple[Atom, ProofNode]] = []
    for index, row in enumerate(result.rows):
        if limit is not None and index >= limit:
            break
        binding = dict(zip(result.variables, row))
        ground = Atom(
            subject.predicate,
            [binding.get(arg, arg) for arg in subject.args],
        )
        proof = search.prove(ground)
        if proof is not None:
            proofs.append((ground, proof))
    return proofs
