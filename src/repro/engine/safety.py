"""Safety (range restriction) analysis for rules and queries.

A rule is *safe* when every head variable, and every variable of an order
comparison, is bound by a positive (non-comparison) body atom or pinned
through a chain of ``=`` conjuncts anchored at a constant.  Unsafe rules
would derive infinite relations, so the engines reject them up front.

**Only ``=`` binds.**  A disequality ``X != 3`` excludes one point of a
dense domain and an order comparison ``X > 3`` bounds a range — neither
names finitely many values, so neither grounds a variable; a rule such as
``p(X) <- (X != 3)`` is unsafe.

The check itself lives in :mod:`repro.analysis.safety` (the lint pass with
codes KB101-KB103); this module keeps the historical raise-based API as a
thin wrapper and attaches the structured diagnostics — code, source span,
fix hint — to every :class:`SafetyError` it raises.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.safety import (
    UNBOUND_COMPARISON,
    bound_variables,
    rule_safety_diagnostics,
)
from repro.errors import SafetyError
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule

__all__ = [
    "bound_variables",
    "safety_problems",
    "check_rule_safety",
    "check_query_safety",
]


def safety_problems(rule: Rule) -> list[str]:
    """Human-readable safety violations of a rule (empty when safe)."""
    return [d.message for d in rule_safety_diagnostics(rule)]


def check_rule_safety(rule: Rule) -> None:
    """Raise :class:`SafetyError` (with diagnostics attached) when unsafe."""
    diagnostics = rule_safety_diagnostics(rule)
    if diagnostics:
        messages = "; ".join(d.message for d in diagnostics)
        raise SafetyError(
            f"unsafe rule {rule}: {messages}", diagnostics=diagnostics
        )


def check_query_safety(subject: Atom, qualifier: Sequence[Atom]) -> None:
    """Raise :class:`SafetyError` when a retrieve query is unsafe.

    The query behaves like the rule ``subject <- subject' and qualifier``
    where ``subject'`` is present only when the subject predicate is known;
    callers that treat the subject as ad hoc (defined by the qualifier)
    should pass the qualifier alone via a synthetic rule.
    """
    body = list(qualifier)
    bound = bound_variables(body) | subject.variable_set()
    for atom in body:
        if atom.is_comparison() and atom.predicate != "=":
            for variable in atom.variables():
                if variable not in bound:
                    message = (
                        f"comparison {atom} uses variable {variable} "
                        "bound by neither subject nor qualifier"
                    )
                    raise SafetyError(
                        message,
                        diagnostics=[
                            Diagnostic(
                                code=UNBOUND_COMPARISON,
                                severity=Severity.ERROR,
                                message=message,
                                predicate=subject.predicate,
                                hint=(
                                    "bind the variable in the subject or a "
                                    "positive qualifier conjunct"
                                ),
                                pass_name="safety",
                            )
                        ],
                    )
