"""Safety (range restriction) analysis for rules and queries.

A rule is *safe* when every head variable, and every variable of an order
comparison, is bound by a positive (non-comparison) body atom or pinned
through a chain of ``=`` conjuncts anchored at a constant.  Unsafe rules
would derive infinite relations, so the engines reject them up front.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SafetyError
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule
from repro.logic.terms import Variable, is_constant, is_variable


def bound_variables(body: Sequence[Atom]) -> frozenset[Variable]:
    """Variables bound by the body: positive atoms plus ``=`` propagation."""
    bound: set[Variable] = set()
    for atom in body:
        if not atom.is_comparison():
            bound.update(atom.variables())
    # Propagate through equality conjuncts to a fixpoint.
    equalities = [a for a in body if a.predicate == "="]
    changed = True
    while changed:
        changed = False
        for atom in equalities:
            left, right = atom.args
            left_bound = is_constant(left) or left in bound
            right_bound = is_constant(right) or right in bound
            if left_bound and is_variable(right) and right not in bound:
                bound.add(right)  # type: ignore[arg-type]
                changed = True
            if right_bound and is_variable(left) and left not in bound:
                bound.add(left)  # type: ignore[arg-type]
                changed = True
    return frozenset(bound)


def safety_problems(rule: Rule) -> list[str]:
    """Human-readable safety violations of a rule (empty when safe)."""
    problems: list[str] = []
    bound = bound_variables(rule.body)
    for variable in sorted(rule.head_variables(), key=lambda v: v.name):
        if variable not in bound:
            problems.append(f"head variable {variable} is not bound by the body")
    for atom in rule.body:
        if atom.is_comparison() and atom.predicate != "=":
            for variable in atom.variables():
                if variable not in bound:
                    problems.append(
                        f"comparison {atom} uses unbound variable {variable}"
                    )
    for atom in rule.negated:
        for variable in atom.variables():
            if variable not in bound:
                problems.append(
                    f"negated atom {atom} uses unbound variable {variable}"
                )
    return problems


def check_rule_safety(rule: Rule) -> None:
    """Raise :class:`SafetyError` when the rule is unsafe."""
    problems = safety_problems(rule)
    if problems:
        raise SafetyError(f"unsafe rule {rule}: " + "; ".join(problems))


def check_query_safety(subject: Atom, qualifier: Sequence[Atom]) -> None:
    """Raise :class:`SafetyError` when a retrieve query is unsafe.

    The query behaves like the rule ``subject <- subject' and qualifier``
    where ``subject'`` is present only when the subject predicate is known;
    callers that treat the subject as ad hoc (defined by the qualifier)
    should pass the qualifier alone via a synthetic rule.
    """
    body = list(qualifier)
    bound = bound_variables(body) | set().union(
        *(a.variable_set() for a in [subject]),
    )
    for atom in body:
        if atom.is_comparison() and atom.predicate != "=":
            for variable in atom.variables():
                if variable not in bound:
                    raise SafetyError(
                        f"comparison {atom} uses variable {variable} "
                        "bound by neither subject nor qualifier"
                    )
