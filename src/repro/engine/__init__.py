"""Deductive engine: data-query (retrieve) evaluation.

Two interchangeable engines — semi-naive bottom-up and top-down with
call-pattern tabling — behind one public API (:func:`retrieve`,
:func:`evaluate_conjunction`).  The bottom-up engine offers three
executors (the ``executor`` knob): the set-at-a-time hash-join executor
of :mod:`repro.engine.plan` (default), the tuple-at-a-time nested-loop
reference executor of :mod:`repro.engine.joins`, and the interned
columnar kernel executor of :mod:`repro.engine.kernels` which lowers
compiled plans to symbol-id space."""

from repro.engine.evaluate import (
    ENGINES,
    RetrieveResult,
    derivable,
    evaluate_conjunction,
    retrieve,
)
from repro.engine.guard import (
    MODES,
    CancellationToken,
    Diagnostics,
    ResourceGuard,
)
from repro.engine.plan import (
    EXECUTORS,
    ConjunctionPlan,
    RulePlan,
    compile_conjunction,
    compile_rule,
)
from repro.engine.incremental import MaterializedDatabase
from repro.engine.kernels import (
    ConjunctionKernel,
    IntTable,
    RuleKernel,
    compile_conjunction_kernel,
    compile_rule_kernel,
)
from repro.engine.magic import MagicProgram, magic_conjunction, magic_rewrite
from repro.engine.provenance import (
    Explanation,
    ProofNode,
    explain,
    explain_all,
    explain_statement,
)
from repro.engine.safety import check_rule_safety, safety_problems
from repro.engine.seminaive import SemiNaiveEngine
from repro.engine.topdown import TopDownEngine
from repro.engine.viewcache import CacheStats, ViewCache

__all__ = [
    "ENGINES",
    "EXECUTORS",
    "MODES",
    "CancellationToken",
    "Diagnostics",
    "ResourceGuard",
    "ConjunctionPlan",
    "RulePlan",
    "compile_conjunction",
    "compile_rule",
    "ConjunctionKernel",
    "IntTable",
    "RuleKernel",
    "compile_conjunction_kernel",
    "compile_rule_kernel",
    "RetrieveResult",
    "derivable",
    "evaluate_conjunction",
    "retrieve",
    "MaterializedDatabase",
    "MagicProgram",
    "magic_conjunction",
    "magic_rewrite",
    "Explanation",
    "ProofNode",
    "explain",
    "explain_all",
    "explain_statement",
    "check_rule_safety",
    "safety_problems",
    "SemiNaiveEngine",
    "TopDownEngine",
    "CacheStats",
    "ViewCache",
]
