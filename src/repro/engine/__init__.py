"""Deductive engine: data-query (retrieve) evaluation.

Two interchangeable engines — semi-naive bottom-up and top-down with
call-pattern tabling — behind one public API (:func:`retrieve`,
:func:`evaluate_conjunction`)."""

from repro.engine.evaluate import (
    ENGINES,
    RetrieveResult,
    derivable,
    evaluate_conjunction,
    retrieve,
)
from repro.engine.incremental import MaterializedDatabase
from repro.engine.magic import MagicProgram, magic_conjunction, magic_rewrite
from repro.engine.provenance import (
    Explanation,
    ProofNode,
    explain,
    explain_all,
    explain_statement,
)
from repro.engine.safety import check_rule_safety, safety_problems
from repro.engine.seminaive import SemiNaiveEngine
from repro.engine.topdown import TopDownEngine

__all__ = [
    "ENGINES",
    "RetrieveResult",
    "derivable",
    "evaluate_conjunction",
    "retrieve",
    "MaterializedDatabase",
    "MagicProgram",
    "magic_conjunction",
    "magic_rewrite",
    "Explanation",
    "ProofNode",
    "explain",
    "explain_all",
    "explain_statement",
    "check_rule_safety",
    "safety_problems",
    "SemiNaiveEngine",
    "TopDownEngine",
]
