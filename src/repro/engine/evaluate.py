"""Public evaluation API: ``retrieve`` data queries and conjunction solving.

``retrieve p where psi`` (paper, section 3.1) finds the database values
whose substitution for the variables of ``p`` and ``psi`` satisfies
``p and psi``, returning the values of the free variables (those of ``p``).
When ``p`` uses a predicate unknown to the database, it is an ad-hoc
predicate defined by ``psi`` (the paper's Example 2 ``answer`` predicate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, MutableMapping, Sequence

from repro.errors import EngineError, ResourceExhausted, SafetyError
from repro.catalog.database import KnowledgeBase
from repro.engine.guard import Diagnostics, ResourceGuard, degrade_catch
from repro.engine.joins import bind_row, join_conjunction, relation_cost_estimator
from repro.engine.plan import compile_conjunction, resolve_executor
from repro.engine.seminaive import SemiNaiveEngine
from repro.engine.topdown import TopDownEngine
from repro.logic.atoms import Atom, atoms_variables
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable, is_constant, is_variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.viewcache import ViewCache

#: Engine selector values accepted by the public API.
ENGINES = ("seminaive", "topdown", "magic")

#: A compiled-plan cache: ``(rules_version, executor, fingerprint)`` ->
#: compiled conjunction plan/kernel.  Sessions pass a bounded mapping so
#: repeat point lookups skip recompilation (see :class:`repro.session.Session`).
PlanCache = MutableMapping[tuple, object]


def _plan_cache_key(
    kb: KnowledgeBase,
    executor: str,
    conjuncts: Sequence[Atom],
    negated: Sequence[Atom],
) -> tuple:
    """The cache key for a compiled conjunction.

    ``rules_version`` keys out any rule change (compiled plans inline the
    join order chosen against the rules); the textual fingerprint keys the
    conjunction shape.  Fact-only mutations keep the key stable — the join
    order is frozen from the first compilation, which is correctness-neutral
    (any order is valid) and the point of the cache: repeat lookups after
    EDB churn skip straight to execution.
    """
    return (
        kb.rules_version,
        executor,
        " & ".join(str(atom) for atom in conjuncts),
        " & ".join(str(atom) for atom in negated),
    )


@dataclass
class RetrieveResult:
    """The answer to a data query.

    ``variables`` are the distinct free variables of the subject, in first
    occurrence order; ``rows`` are their bindings (constant tuples).  For a
    variable-free subject the result is Boolean: ``rows`` holds one empty
    tuple when the subject is derivable.

    ``diagnostics`` reports how a resource-governed query ended (``None``
    for ungoverned queries): a degrade-mode trip yields a partial answer
    with ``diagnostics.degraded`` true — a sound under-approximation.
    """

    subject: Atom
    variables: tuple[Variable, ...]
    rows: list[tuple[Constant, ...]] = field(default_factory=list)
    diagnostics: Diagnostics | None = None

    @property
    def complete(self) -> bool:
        """Whether the answer is exhaustive (no budget degraded it)."""
        return self.diagnostics is None or self.diagnostics.complete

    def __iter__(self) -> Iterator[tuple[Constant, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    @property
    def boolean(self) -> bool:
        """Yes/no reading (meaningful for variable-free subjects)."""
        return bool(self.rows)

    def to_set(self) -> set[tuple[Constant, ...]]:
        """The answer as a set of binding tuples."""
        return set(self.rows)

    def values(self) -> list[object]:
        """Python values, flattened when the subject has one variable."""
        if len(self.variables) == 1:
            return [row[0].value for row in self.rows]
        return [tuple(c.value for c in row) for row in self.rows]

    def __str__(self) -> str:
        if not self.variables:
            return "yes" if self.rows else "no"
        names = ", ".join(v.name for v in self.variables)
        return f"{{{names}: {len(self.rows)} rows}}"


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise EngineError(f"unknown engine {engine!r}; expected one of {ENGINES}")


def evaluate_conjunction(
    kb: KnowledgeBase,
    conjuncts: Sequence[Atom],
    engine: str = "seminaive",
    max_derived_facts: int | None = None,
    negated: Sequence[Atom] = (),
    executor: str | None = None,
    guard: ResourceGuard | None = None,
    cache: "ViewCache | None" = None,
    tracer=None,
    plan_cache: PlanCache | None = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions satisfying a conjunction over the database.

    ``negated`` conjuncts filter solutions by absence (closed world); their
    variables must be bound by the positive conjuncts.  ``executor``
    selects the bottom-up execution model: ``"batch"`` compiles the
    conjunction (and the rules under it) into set-at-a-time hash-join
    plans, ``"nested"`` uses the tuple-at-a-time reference executor, and
    ``"kernel"`` lowers the compiled plans to integer join kernels over
    interned symbol ids (:mod:`repro.engine.kernels`).  ``None`` (the
    default) resolves via :func:`repro.engine.plan.default_executor` —
    normally ``kernel``, overridable with the ``REPRO_EXECUTOR``
    environment variable.  Only the seminaive engine honours the knob;
    topdown and magic are tuple-at-a-time by construction.

    ``plan_cache`` (a mutable mapping, usually a session's bounded cache)
    memoizes the compiled plan/kernel for the query conjunction itself
    under ``(kb.rules_version, executor, fingerprint)``, so repeat point
    lookups skip recompilation.  Honoured by the batch and kernel
    executors of the seminaive engine.

    ``guard`` governs the whole evaluation (deadline, fact budget,
    cancellation).  In strict mode exhaustion raises a
    :class:`~repro.errors.ResourceExhausted` error; in degrade mode the
    enumeration ends early instead — everything yielded is genuinely
    derivable, so the prefix is a sound under-approximation — and the trip
    is recorded on ``guard.tripped``.

    ``cache`` (a :class:`~repro.engine.viewcache.ViewCache` bound to *kb*)
    serves the seminaive engine's IDB materialisations from warm views when
    their dependency fingerprints are current, refreshing small EDB deltas
    incrementally.  It is ignored for other engines, for a mismatched
    knowledge base, and under an explicit ``max_derived_facts`` limit
    (cached relations were computed without one, so answers could differ).
    """
    _check_engine(engine)
    executor = resolve_executor(executor)
    iterator = _evaluate_conjunction(
        kb, conjuncts, engine, max_derived_facts, negated, executor, guard, cache,
        tracer, plan_cache,
    )
    if guard is None or guard.mode != "degrade":
        yield from iterator
        return
    try:
        yield from iterator
    except ResourceExhausted as error:
        degrade_catch(guard, error)


def _evaluate_conjunction(
    kb: KnowledgeBase,
    conjuncts: Sequence[Atom],
    engine: str,
    max_derived_facts: int | None,
    negated: Sequence[Atom],
    executor: str,
    guard: ResourceGuard | None,
    cache: "ViewCache | None" = None,
    tracer=None,
    plan_cache: PlanCache | None = None,
) -> Iterator[Substitution]:
    if engine == "magic":
        from repro.engine.magic import magic_conjunction

        if negated:
            raise EngineError(
                "the magic engine covers positive queries; use seminaive or "
                "topdown for negated qualifiers"
            )
        yield from magic_conjunction(
            kb, conjuncts, max_derived_facts=max_derived_facts, guard=guard,
            tracer=tracer,
        )
        return
    if engine == "topdown":
        evaluator = TopDownEngine(
            kb, max_table_rows=max_derived_facts, guard=guard, tracer=tracer
        )

        def absent_topdown(theta: Substitution) -> bool:
            for atom in negated:
                instantiated = theta.apply(atom)
                if not instantiated.is_ground():
                    raise SafetyError(
                        f"negated conjunct {instantiated} is not ground; bind its "
                        "variables with positive conjuncts"
                    )
                if next(iter(evaluator.query((instantiated,))), None) is not None:
                    return False
            return True

        for theta in evaluator.query(conjuncts):
            if not negated or absent_topdown(theta):
                yield theta
        return

    positive_predicates = {
        a.predicate for a in conjuncts if not a.is_comparison() and kb.is_idb(a.predicate)
    }
    negated_predicates = {a.predicate for a in negated if kb.is_idb(a.predicate)}
    wanted = sorted(positive_predicates | negated_predicates)
    # A cache only applies when bound to this knowledge base and when no
    # explicit fact limit is in force: cached views were materialised
    # without one, so a limited evaluation could legitimately differ.
    use_cache = (
        cache is not None and cache.kb is kb and max_derived_facts is None
    )
    materializer = (
        cache
        if use_cache
        else SemiNaiveEngine(
            kb, max_derived_facts=max_derived_facts, executor=executor, guard=guard,
            tracer=tracer,
        )
    )
    try:
        if use_cache:
            derived = cache.evaluate(
                wanted, executor=executor, guard=guard, tracer=tracer
            )
        else:
            derived = materializer.evaluate(wanted)
    except ResourceExhausted as error:
        # Degrade: the partial fixpoint is sound (derivation is monotone),
        # so finish the query over whatever was materialised before the
        # budget tripped.  degrade_catch re-raises in strict mode and
        # disarms the guard otherwise, letting the final join complete.
        degrade_catch(guard, error)
        if negated_predicates:
            # Absence filtering against a *partial* negated relation would
            # over-approximate (rows could pass that a complete evaluation
            # rejects); the only sound degraded answer is the empty one.
            return
        derived = {p: materializer.partial_relation(p) for p in wanted}

    def relation_view(predicate: str):
        if kb.is_edb(predicate):
            return kb.relation(predicate)
        return derived.get(predicate)

    if executor == "kernel":
        # The query conjunction runs as an integer kernel: compile (or
        # fetch from the plan cache), execute over interned rows, and
        # externalize ids back into substitutions at the boundary.
        from repro.engine.kernels import (
            compile_conjunction_kernel,
            substitutions_from_kernel_batch,
        )

        key = _plan_cache_key(kb, executor, conjuncts, negated)
        kernel = plan_cache.get(key) if plan_cache is not None else None
        if kernel is None:
            estimate = relation_cost_estimator(relation_view)
            kernel = compile_conjunction_kernel(conjuncts, negated, estimate=estimate)
            if plan_cache is not None:
                plan_cache[key] = kernel
        yield from substitutions_from_kernel_batch(
            kernel, kernel.execute_rows(relation_view, guard, tracer)
        )
        return

    if executor == "batch":
        # The query conjunction itself runs set-at-a-time too: compile it
        # (negated conjuncts become anti-join probes) and adapt the binding
        # batch back into substitutions at the boundary.
        key = _plan_cache_key(kb, executor, conjuncts, negated)
        plan = plan_cache.get(key) if plan_cache is not None else None
        if plan is None:
            estimate = relation_cost_estimator(relation_view)
            plan = compile_conjunction(conjuncts, negated, estimate=estimate)
            if plan_cache is not None:
                plan_cache[key] = plan
        schema = plan.schema
        for binding in plan.execute(relation_view, guard, tracer):
            yield Substitution(dict(zip(schema, binding)))
        return

    def resolver(atom: Atom, theta: Substitution) -> Iterator[Substitution]:
        relation = relation_view(atom.predicate)
        if relation is None:
            return
        pattern = [arg if is_constant(arg) else None for arg in atom.args]
        for row in relation.lookup(pattern):
            extended = bind_row(atom, row, theta)
            if extended is not None:
                yield extended

    def absent(theta: Substitution) -> bool:
        for atom in negated:
            instantiated = theta.apply(atom)
            if not instantiated.is_ground():
                raise SafetyError(
                    f"negated conjunct {instantiated} is not ground; bind its "
                    "variables with positive conjuncts"
                )
            if next(resolver(instantiated, theta), None) is not None:
                return False
        return True

    estimate = relation_cost_estimator(relation_view)
    for theta in join_conjunction(resolver, conjuncts, estimate=estimate):
        if guard is not None:
            guard.tick()
        if not negated or absent(theta):
            yield theta


def retrieve(
    kb: KnowledgeBase,
    subject: Atom,
    qualifier: Sequence[Atom] = (),
    engine: str = "seminaive",
    max_derived_facts: int | None = None,
    negated_qualifier: Sequence[Atom] = (),
    executor: str | None = None,
    guard: ResourceGuard | None = None,
    cache: "ViewCache | None" = None,
    tracer=None,
    plan_cache: PlanCache | None = None,
) -> RetrieveResult:
    """Evaluate a data query ``retrieve subject where qualifier``.

    The free variables are those of the subject; all other variables are
    existential.  A subject with an unknown predicate is defined by the
    qualifier, so its variables must all occur in the qualifier.
    ``negated_qualifier`` conjuncts filter by absence ("foreign students who
    are not married"); their variables must be bound by the subject or the
    positive qualifier.  ``executor`` selects the bottom-up execution model
    (see :func:`evaluate_conjunction`).

    ``guard`` puts the query under a resource budget: strict mode raises
    :class:`~repro.errors.ResourceExhausted` on exhaustion; degrade mode
    returns the rows found so far with ``result.diagnostics`` marking the
    answer a sound under-approximation.  The guard is one activation — a
    :class:`~repro.session.Session` hands each query a fresh one.
    """
    _check_engine(engine)
    executor = resolve_executor(executor)
    if subject.is_comparison():
        raise EngineError("the subject of retrieve may not be a comparison")

    free_vars: list[Variable] = []
    for arg in subject.args:
        if is_variable(arg) and arg not in free_vars:
            free_vars.append(arg)

    if kb.has_predicate(subject.predicate):
        kb.schema(subject.predicate).check_arity(subject.arity)
        conjunction: tuple[Atom, ...] = (subject, *qualifier)
    else:
        # Ad-hoc subject: defined through the qualifier (paper, Example 2).
        qualifier_vars = atoms_variables(qualifier)
        missing = [v for v in free_vars if v not in qualifier_vars]
        if missing:
            names = ", ".join(v.name for v in missing)
            raise SafetyError(
                f"ad-hoc subject variable(s) {names} do not occur in the qualifier"
            )
        conjunction = tuple(qualifier)

    seen: set[tuple[Constant, ...]] = set()
    rows: list[tuple[Constant, ...]] = []
    from repro.obs.trace import traced_span

    with traced_span(
        tracer, "retrieve", subject=str(subject), engine=engine, executor=executor
    ):
        for theta in evaluate_conjunction(
            kb,
            conjunction,
            engine=engine,
            max_derived_facts=max_derived_facts,
            negated=tuple(negated_qualifier),
            executor=executor,
            guard=guard,
            cache=cache,
            tracer=tracer,
            plan_cache=plan_cache,
        ):
            values = []
            for variable in free_vars:
                term = theta.apply_term(variable)
                if not is_constant(term):
                    raise SafetyError(
                        f"free variable {variable} is not bound by the query"
                    )
                values.append(term)
            row = tuple(values)
            if row not in seen:
                seen.add(row)
                rows.append(row)
        if tracer is not None:
            tracer.count("answer_rows", len(rows))
    diagnostics = guard.diagnostics() if guard is not None else None
    return RetrieveResult(
        subject=subject,
        variables=tuple(free_vars),
        rows=rows,
        diagnostics=diagnostics,
    )


def derivable(
    kb: KnowledgeBase,
    atom: Atom,
    engine: str = "seminaive",
    guard: ResourceGuard | None = None,
    cache: "ViewCache | None" = None,
) -> bool:
    """Whether some instance of *atom* is derivable from the database."""
    for _ in evaluate_conjunction(kb, (atom,), engine=engine, guard=guard, cache=cache):
        return True
    return False
