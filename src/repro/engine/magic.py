"""Magic-sets rewriting: goal-directed bottom-up evaluation.

The classic deductive-database optimisation (from the LDL/NAIL! systems the
paper cites): given a query, rewrite the program so that bottom-up
evaluation only derives facts *relevant to the query's constants*.  Each
IDB predicate is split into adorned versions (``path__bf`` = "path called
with its first argument bound"), guarded by *magic predicates* that carry
the bindings flowing from the query:

    magic_path__bf(n0).                                  % the query seed
    path__bf(X, Y) <- magic_path__bf(X) and edge(X, Y).
    path__bf(X, Y) <- magic_path__bf(X) and edge(X, Z) and path__bf(Z, Y).
    magic_path__bf(Z) <- magic_path__bf(X) and edge(X, Z).

Arbitrary conjunctive queries are handled through a synthetic goal rule:
``__goal(free vars) <- conjunction``; the sideways information passing
(left-to-right SIPS) then adorns each body atom with whatever is bound by
constants and earlier atoms.

Scope: positive programs (stratified negation falls back to the plain
engine with a clear error from :func:`magic_rewrite`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import EngineError
from repro.analysis.absint.modes import ModeTable, RuleSchedule, adornment_of
from repro.catalog.database import KnowledgeBase
from repro.engine.seminaive import SemiNaiveEngine
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable

__all__ = [
    "GOAL",
    "ADORN_SEP",
    "MAGIC_PREFIX",
    "MagicProgram",
    "adorned_name",
    "adornment_of",  # canonical definition lives in analysis.absint.modes
    "magic_conjunction",
    "magic_name",
    "magic_rewrite",
]

#: Synthetic goal predicate for conjunction queries.
GOAL = "__goal"
#: Separator between a predicate name and its adornment.
ADORN_SEP = "__"
MAGIC_PREFIX = "magic_"


def adorned_name(predicate: str, adornment: str) -> str:
    """The adorned predicate name, e.g. ``path`` + ``bf`` -> ``path__bf``."""
    return f"{predicate}{ADORN_SEP}{adornment}" if adornment else predicate


def magic_name(predicate: str, adornment: str) -> str:
    """The magic-guard predicate name, e.g. ``magic_path__bf``."""
    return MAGIC_PREFIX + adorned_name(predicate, adornment)


def _bound_args(atom: Atom, adornment: str) -> list:
    return [arg for arg, letter in zip(atom.args, adornment) if letter == "b"]


@dataclass
class MagicProgram:
    """The rewritten program plus the query to run against it."""

    kb: KnowledgeBase
    goal: Atom  # adorned goal atom to evaluate
    adorned_predicates: int = 0
    magic_rules: int = 0


def _schedule_for(
    mode_table: ModeTable | None, predicate: str, adornment: str, rule: Rule
) -> RuleSchedule:
    """The SIPS schedule of one rule under one adornment.

    Prefers the memoized table from a cached analysis summary (repeat
    queries with already-seen call patterns skip the walk entirely);
    falls back to computing the schedule directly.
    """
    if mode_table is not None:
        for schedule in mode_table.schedule(predicate, adornment):
            if schedule.rule is rule:
                return schedule
    return ModeTable.schedule_rule(rule, adornment)


def magic_rewrite(
    kb: KnowledgeBase,
    conjunction: Sequence[Atom],
    mode_table: ModeTable | None = None,
) -> MagicProgram:
    """Rewrite *kb* for the given conjunctive query.

    Returns a new knowledge base (sharing fact storage via copies) whose
    rules derive only query-relevant facts, plus the goal atom to retrieve.
    *mode_table* (normally the cached analysis summary's) supplies memoized
    per-rule adornment schedules; the rewrite output is identical with or
    without it.
    """
    for rule in kb.rules():
        if not rule.is_positive():
            raise EngineError(
                "magic-sets rewriting covers positive programs only; "
                f"rule {rule} uses negation"
            )

    free_vars: list[Variable] = []
    for atom in conjunction:
        for variable in atom.variables():
            if variable not in free_vars:
                free_vars.append(variable)
    goal_head = Atom(GOAL, free_vars)
    goal_rule = Rule(goal_head, conjunction)

    rules_by_pred: dict[str, list[Rule]] = {GOAL: [goal_rule]}
    for rule in kb.rules():
        rules_by_pred.setdefault(rule.head.predicate, []).append(rule)

    def is_rewritable(predicate: str) -> bool:
        return predicate in rules_by_pred

    new_rules: list[Rule] = []
    seen_rule_texts: set[str] = set()
    worklist: list[tuple[str, str]] = [(GOAL, "f" * len(free_vars))]
    processed: set[tuple[str, str]] = set()

    def emit(rule: Rule) -> None:
        text = str(rule)
        if text not in seen_rule_texts:
            seen_rule_texts.add(text)
            new_rules.append(rule)

    while worklist:
        predicate, adornment = worklist.pop()
        if (predicate, adornment) in processed:
            continue
        processed.add((predicate, adornment))
        for rule in rules_by_pred.get(predicate, ()):
            head = rule.head
            # The per-atom adornments come from the (memoized) SIPS
            # schedule — the same left-to-right bookkeeping the binding-mode
            # analysis runs, so the rewrite and the analysis always agree.
            schedule = _schedule_for(
                mode_table if predicate != GOAL else None,
                predicate,
                adornment,
                rule,
            )
            magic_guard = Atom(
                magic_name(predicate, adornment), _bound_args(head, adornment)
            )
            new_body: list[Atom] = [magic_guard]
            for index, body_atom in enumerate(rule.body):
                if body_atom.is_comparison():
                    new_body.append(body_atom)
                    continue
                entry = schedule.entry_at(index)
                assert entry is not None  # every non-comparison atom has one
                if is_rewritable(body_atom.predicate):
                    body_adornment = entry.adornment
                    # Magic rule: the bindings reaching this subgoal.
                    magic_head = Atom(
                        magic_name(body_atom.predicate, body_adornment),
                        _bound_args(body_atom, body_adornment),
                    )
                    emit(Rule(magic_head, list(new_body)))
                    worklist.append((body_atom.predicate, body_adornment))
                    new_body.append(
                        Atom(
                            adorned_name(body_atom.predicate, body_adornment),
                            body_atom.args,
                        )
                    )
                else:
                    new_body.append(body_atom)
            emit(
                Rule(Atom(adorned_name(predicate, adornment), head.args), new_body)
            )

    rewritten = kb.with_rules([])
    seed_predicate = magic_name(GOAL, "f" * len(free_vars))
    rewritten.declare_edb(seed_predicate, 0)
    rewritten.add_fact(seed_predicate)
    for rule in new_rules:
        rewritten.add_rule(rule)

    return MagicProgram(
        kb=rewritten,
        goal=Atom(adorned_name(GOAL, "f" * len(free_vars)), free_vars),
        adorned_predicates=len(processed),
        magic_rules=sum(1 for r in new_rules if r.head.predicate.startswith(MAGIC_PREFIX)),
    )


def magic_conjunction(
    kb: KnowledgeBase,
    conjunction: Sequence[Atom],
    max_derived_facts: int | None = None,
    guard=None,
    tracer=None,
) -> Iterator[Substitution]:
    """Enumerate solutions of a conjunction via magic-sets evaluation.

    *guard* (a :class:`~repro.engine.guard.ResourceGuard`) governs the inner
    bottom-up evaluation; in degrade mode a tripped budget yields the goal
    rows derived so far (a sound under-approximation) instead of raising.
    *tracer* records a ``magic.rewrite`` event plus the inner engine's spans.
    """
    from repro.errors import ResourceExhausted
    from repro.engine.guard import degrade_catch
    from repro.engine.joins import bind_row

    mode_table: ModeTable | None = None
    from repro.analysis.absint.summary import planning_enabled, summary_for

    if planning_enabled():
        # The cached summary's mode table memoizes the SIPS schedules, so
        # repeat queries with already-seen call patterns skip the walk.
        mode_table = summary_for(kb).mode_table
    program = magic_rewrite(kb, conjunction, mode_table=mode_table)
    if tracer is not None:
        tracer.event(
            "magic.rewrite",
            adorned_predicates=program.adorned_predicates,
            magic_rules=program.magic_rules,
            goal=str(program.goal),
        )
    # The rewritten kb is fresh per query: analysing it would miss the
    # summary cache every time, so the inner engine runs analysis-free.
    engine = SemiNaiveEngine(
        program.kb,
        max_derived_facts=max_derived_facts,
        guard=guard,
        tracer=tracer,
        analysis=False,
    )
    try:
        relation = engine.derived_relation(program.goal.predicate)
    except ResourceExhausted as error:
        degrade_catch(guard, error)  # re-raises unless the guard degrades
        relation = engine.partial_relation(program.goal.predicate)
    for row in relation.rows():
        theta = bind_row(program.goal, row, Substitution.EMPTY)
        if theta is not None:
            yield theta
