"""Set-at-a-time physical plans for rule bodies and query conjunctions.

The tuple-at-a-time executor in :mod:`repro.engine.joins` resolves one
binding at a time, allocating a :class:`Substitution` per extension.  This
module compiles a conjunction *once* into a physical plan — join order
chosen by the cardinality estimator, then executed as **hash joins** over
whole :class:`Relation` batches:

* each positive atom becomes a :class:`_HashJoin` step keyed on the columns
  shared with already-bound variables, with constant arguments and repeated
  variables applied as build-side filters;
* comparisons become vectorized filter steps (:class:`_Compare`) placed at
  the earliest position where their operands are ground, and ``=`` with one
  unbound side becomes a :class:`_Bind` step extending the batch schema;
* negated atoms become anti-join probes (:class:`_AntiJoin`) after the
  positive body has bound their variables.

Intermediate results are plain lists of constant tuples over a *slot
schema* (the ordered list of variables bound so far) — no substitution
objects on the hot path.  Build-side hash tables are memoized per step and
invalidated through :attr:`Relation.version`, so a stable EDB relation is
hashed once per plan no matter how many delta iterations probe it.

Plans are compiled per ``(rule, delta-position)`` by the semi-naive engine
and cached for the lifetime of a stratum evaluation (see
:meth:`SemiNaiveEngine._plan_for`).
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Sequence

from repro.errors import ArityError, SafetyError
from repro.catalog.relation import Relation, Row
from repro.engine.joins import CostEstimator, order_conjuncts
from repro.logic.atoms import Atom
from repro.logic.builtins import comparable
from repro.logic.clauses import Rule
from repro.logic.terms import Constant, Variable, is_constant

#: Executor selector values accepted by the public API: the batch
#: (set-at-a-time hash join) executor, the tuple-at-a-time nested-loop
#: reference executor, and the integer-interned kernel executor
#: (:mod:`repro.engine.kernels`).
EXECUTORS = ("batch", "nested", "kernel")

#: A batch: bindings for the plan's slot schema, one constant per slot.
Batch = list[tuple]

#: Marker prefix distinguishing a delta occurrence inside a rewritten body
#: (shared by the semi-naive engine and the analysis-aware estimator).
DELTA_PREFIX = "\x7fdelta\x7f:"

#: Accessor from predicate name to its current relation (``None`` =
#: undefined predicate, i.e. an empty extension).
RelationView = Callable[[str], Relation | None]

_ORDER_OPS: dict[str, Callable[[object, object], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


def check_executor(executor: str) -> None:
    """Raise :class:`~repro.errors.EngineError` on an unknown executor name."""
    if executor not in EXECUTORS:
        from repro.errors import EngineError

        raise EngineError(
            f"unknown executor {executor!r}; expected one of {EXECUTORS}"
        )


#: The process default when no executor is requested: the integer-interned
#: kernel executor (fastest across the benchmark suite; the batch and
#: nested executors remain as explicit escape hatches).
DEFAULT_EXECUTOR = "kernel"


def default_executor() -> str:
    """The executor used when callers pass ``executor=None``.

    The ``REPRO_EXECUTOR`` environment variable overrides the built-in
    default (one of ``batch``/``nested``/``kernel``), so a deployment can
    flip engines without touching call sites; an unknown value raises
    :class:`~repro.errors.EngineError` at first use.
    """
    import os

    executor = os.environ.get("REPRO_EXECUTOR")
    if executor is None:
        return DEFAULT_EXECUTOR
    check_executor(executor)
    return executor


def resolve_executor(executor: str | None) -> str:
    """Validate an explicit executor or resolve ``None`` to the default."""
    if executor is None:
        return default_executor()
    check_executor(executor)
    return executor


def analysis_estimator(relation_for: RelationView, summary) -> CostEstimator:
    """A cost estimator backed by live stats *and* analysis estimates.

    Live relation statistics win whenever the relation is non-empty (they
    are exact); the abstract cardinality estimate from *summary* (an
    :class:`~repro.analysis.absint.summary.AnalysisSummary`) fills in for
    IDB predicates whose relations are still empty at plan-compile time —
    exactly the blind spot of the purely syntactic ordering, since plans
    are compiled once per stratum before any facts are derived.
    """
    from repro.engine.joins import relation_cost_estimator

    live = relation_cost_estimator(relation_for)

    def estimate(atom: Atom, bound: set[Variable]) -> float | None:
        relation = relation_for(atom.predicate)
        if relation is not None and len(relation) > 0:
            return live(atom, bound)
        predicate = atom.predicate
        if predicate.startswith(DELTA_PREFIX):
            if relation is None:
                return None  # delta not materialised yet: genuinely unknown
            predicate = predicate[len(DELTA_PREFIX):]
        rows = summary.estimated_rows(predicate)
        if rows is None:
            return live(atom, bound)
        if rows <= 0:
            return 0.0
        size = float(rows)
        distincts = summary.distinct_estimates(predicate) or ()
        for column, arg in enumerate(atom.args):
            if is_constant(arg) or arg in bound:
                distinct = distincts[column] if column < len(distincts) else 1.0
                if distinct > 1.0:
                    size /= distinct
        return max(size, 0.001)

    return estimate


class _HashJoin:
    """Join the batch against one relation, hashing on shared variables.

    The build side (the relation) is filtered by constant arguments and
    intra-atom repeated variables, projected to the columns that bind new
    variables, and hashed on the join-key columns.  The hash table is
    memoized and reused while the relation's :attr:`~Relation.version` is
    unchanged — the common case for EDB relations probed across many delta
    iterations.
    """

    __slots__ = (
        "predicate", "arity", "key_slots", "key_cols",
        "const_checks", "dup_checks", "out_cols",
        "_cache_rel", "_cache_ver", "_cache_table",
    )

    def __init__(
        self,
        predicate: str,
        arity: int,
        key_slots: list[int],
        key_cols: list[int],
        const_checks: list[tuple[int, Constant]],
        dup_checks: list[tuple[int, int]],
        out_cols: list[int],
    ) -> None:
        self.predicate = predicate
        self.arity = arity
        self.key_slots = key_slots
        self.key_cols = key_cols
        self.const_checks = const_checks
        self.dup_checks = dup_checks
        self.out_cols = out_cols
        self._cache_rel: Relation | None = None
        self._cache_ver = -1
        self._cache_table: object = None

    def _row_passes(self, row: Row) -> bool:
        for col, value in self.const_checks:
            if row[col] != value:
                return False
        for left, right in self.dup_checks:
            if row[left] != row[right]:
                return False
        return True

    def _build(self, relation: Relation) -> object:
        """The (memoized) build side: a hash table, or a row list if keyless."""
        version = relation.version
        if self._cache_rel is relation and self._cache_ver == version:
            return self._cache_table
        out_cols = self.out_cols
        if not self.key_cols:
            table: object = [
                tuple(row[c] for c in out_cols)
                for row in relation
                if self._row_passes(row)
            ]
        elif len(self.key_cols) == 1:
            key_col = self.key_cols[0]
            single: dict[Constant, list[tuple]] = {}
            for row in relation:
                if self._row_passes(row):
                    single.setdefault(row[key_col], []).append(
                        tuple(row[c] for c in out_cols)
                    )
            table = single
        else:
            key_cols = self.key_cols
            multi: dict[tuple, list[tuple]] = {}
            for row in relation:
                if self._row_passes(row):
                    multi.setdefault(
                        tuple(row[c] for c in key_cols), []
                    ).append(tuple(row[c] for c in out_cols))
            table = multi
        self._cache_rel = relation
        self._cache_ver = version
        self._cache_table = table
        return table

    def run(self, batch: Batch, relations: RelationView) -> Batch:
        relation = relations(self.predicate)
        if relation is None or len(relation) == 0:
            return []
        if relation.arity != self.arity:
            raise ArityError(
                f"atom {self.predicate}/{self.arity} does not match relation "
                f"arity {relation.arity}"
            )
        table = self._build(relation)
        result: Batch = []
        append = result.append
        if not self.key_slots:
            for binding in batch:
                for extension in table:  # type: ignore[union-attr]
                    append(binding + extension)
        elif len(self.key_slots) == 1:
            slot = self.key_slots[0]
            get = table.get  # type: ignore[union-attr]
            for binding in batch:
                matches = get(binding[slot])
                if matches:
                    for extension in matches:
                        append(binding + extension)
        else:
            slots = self.key_slots
            get = table.get  # type: ignore[union-attr]
            for binding in batch:
                matches = get(tuple(binding[s] for s in slots))
                if matches:
                    for extension in matches:
                        append(binding + extension)
        return result


class _Bind:
    """``=`` with one unbound side: extend every binding with a new slot."""

    __slots__ = ("source_slot", "source_const")

    def __init__(self, source_slot: int | None, source_const: Constant | None) -> None:
        self.source_slot = source_slot
        self.source_const = source_const

    def run(self, batch: Batch, relations: RelationView) -> Batch:
        if self.source_slot is not None:
            slot = self.source_slot
            return [binding + (binding[slot],) for binding in batch]
        extension = (self.source_const,)
        return [binding + extension for binding in batch]


class _Compare:
    """A ground comparison applied as a filter over the whole batch.

    Semantics match :func:`repro.logic.builtins.evaluate_comparison`:
    equality and disequality are defined across all constants, order
    operators require type-compatible operands.
    """

    __slots__ = ("op", "left_slot", "left_const", "right_slot", "right_const")

    def __init__(
        self,
        op: str,
        left_slot: int | None,
        left_const: Constant | None,
        right_slot: int | None,
        right_const: Constant | None,
    ) -> None:
        self.op = op
        self.left_slot = left_slot
        self.left_const = left_const
        self.right_slot = right_slot
        self.right_const = right_const

    def _operand(self, which: str) -> Callable[[tuple], Constant]:
        slot = self.left_slot if which == "left" else self.right_slot
        const = self.left_const if which == "left" else self.right_const
        if slot is not None:
            return lambda binding, s=slot: binding[s]
        return lambda binding, c=const: c  # type: ignore[misc]

    def run(self, batch: Batch, relations: RelationView) -> Batch:
        left = self._operand("left")
        right = self._operand("right")
        op = self.op
        if op == "=":
            return [b for b in batch if left(b) == right(b)]
        if op == "!=":
            return [b for b in batch if left(b) != right(b)]
        compare = _ORDER_OPS[op]
        result: Batch = []
        for binding in batch:
            l, r = left(binding), right(binding)
            if not comparable(l, r):
                from repro.errors import LogicError

                raise LogicError(
                    f"cannot order-compare {l!r} and {r!r} (incompatible types)"
                )
            if compare(l.value, r.value):
                result.append(binding)
        return result


class _AntiJoin:
    """A negated atom: drop bindings with a matching row (closed world).

    The probe-key set is memoized like a hash-join build side.  An undefined
    predicate is trivially absent, so the step is a no-op.
    """

    __slots__ = (
        "predicate", "arity", "key_slots", "key_cols", "const_checks",
        "_cache_rel", "_cache_ver", "_cache_keys",
    )

    def __init__(
        self,
        predicate: str,
        arity: int,
        key_slots: list[int],
        key_cols: list[int],
        const_checks: list[tuple[int, Constant]],
    ) -> None:
        self.predicate = predicate
        self.arity = arity
        self.key_slots = key_slots
        self.key_cols = key_cols
        self.const_checks = const_checks
        self._cache_rel: Relation | None = None
        self._cache_ver = -1
        self._cache_keys: set | None = None

    def _keys(self, relation: Relation) -> set:
        version = relation.version
        if self._cache_rel is relation and self._cache_ver == version:
            return self._cache_keys  # type: ignore[return-value]
        key_cols = self.key_cols
        consts = self.const_checks
        keys: set = set()
        for row in relation:
            if all(row[c] == v for c, v in consts):
                keys.add(tuple(row[c] for c in key_cols))
        self._cache_rel = relation
        self._cache_ver = version
        self._cache_keys = keys
        return keys

    def run(self, batch: Batch, relations: RelationView) -> Batch:
        relation = relations(self.predicate)
        if relation is None or len(relation) == 0:
            return batch
        if relation.arity != self.arity:
            raise ArityError(
                f"negated atom {self.predicate}/{self.arity} does not match "
                f"relation arity {relation.arity}"
            )
        keys = self._keys(relation)
        if not keys:
            return batch
        slots = self.key_slots
        return [
            binding
            for binding in batch
            if tuple(binding[s] for s in slots) not in keys
        ]


class ConjunctionPlan:
    """A compiled physical plan for one conjunction (plus negated atoms).

    ``schema`` is the ordered tuple of variables the output batch binds,
    one slot per variable.  :meth:`execute` returns the satisfying binding
    tuples under the relations currently visible through the view.
    ``described`` carries one human-readable line per step, recorded at
    compile time (when the slot→variable mapping is known) for ``explain``.
    """

    __slots__ = ("schema", "steps", "described")

    def __init__(
        self,
        schema: tuple[Variable, ...],
        steps: list,
        described: list[str] | None = None,
    ) -> None:
        self.schema = schema
        self.steps = steps
        self.described = described or []

    def execute(self, relations: RelationView, guard=None, tracer=None) -> Batch:
        """Run the plan; *guard* (a :class:`~repro.engine.guard.ResourceGuard`)
        is checkpointed at every step boundary, charged with the batch size.
        *tracer* (a :class:`~repro.obs.trace.Tracer`) accumulates the same
        per-step batch sizes as the ``join_probes`` counter."""
        batch: Batch = [()]
        for step in self.steps:
            if guard is not None:
                guard.tick(len(batch))
            if tracer is not None:
                tracer.count("join_probes", len(batch))
            batch = step.run(batch, relations)
            if not batch:
                return []
        return batch


class RulePlan:
    """A conjunction plan plus the head projection for one rule."""

    __slots__ = ("rule", "plan", "head_template")

    def __init__(
        self,
        rule: Rule,
        plan: ConjunctionPlan,
        head_template: list[tuple[bool, object]],
    ) -> None:
        self.rule = rule
        self.plan = plan
        self.head_template = head_template

    def execute(self, relations: RelationView, guard=None, tracer=None) -> list[Row]:
        batch = self.plan.execute(relations, guard, tracer)
        if not batch:
            return []
        template = self.head_template
        return [
            tuple(
                value if is_const else binding[value]  # type: ignore[index]
                for is_const, value in template
            )
            for binding in batch
        ]


def compile_conjunction(
    conjuncts: Sequence[Atom],
    negated: Sequence[Atom] = (),
    estimate: CostEstimator | None = None,
) -> ConjunctionPlan:
    """Compile a conjunction into a physical plan.

    The join order comes from :func:`order_conjuncts` (cardinality-aware
    when *estimate* is given), so comparisons are placed at the earliest
    ground position.  Raises :class:`SafetyError` when a comparison can
    never become ground, or when a negated atom uses a variable the
    positive conjuncts leave unbound.
    """
    ordered = order_conjuncts(conjuncts, estimate=estimate)
    slots: dict[Variable, int] = {}
    steps: list = []
    described: list[str] = []

    def operand(term: object) -> tuple[int | None, Constant | None]:
        if is_constant(term):
            return None, term  # type: ignore[return-value]
        return slots[term], None  # type: ignore[index]

    for atom in ordered:
        if atom.is_comparison():
            left, right = atom.args
            left_bound = is_constant(left) or left in slots
            right_bound = is_constant(right) or right in slots
            if atom.predicate == "=" and not (left_bound and right_bound):
                source = left if left_bound else right
                target = right if left_bound else left
                source_slot, source_const = operand(source)
                steps.append(_Bind(source_slot, source_const))
                described.append(f"bind {target} = {source}")
                slots[target] = len(slots)  # type: ignore[index]
            else:
                left_slot, left_const = operand(left)
                right_slot, right_const = operand(right)
                steps.append(
                    _Compare(atom.predicate, left_slot, left_const, right_slot, right_const)
                )
                described.append(f"filter {atom}")
            continue
        key_slots: list[int] = []
        key_cols: list[int] = []
        const_checks: list[tuple[int, Constant]] = []
        dup_checks: list[tuple[int, int]] = []
        out_cols: list[int] = []
        out_vars: list[Variable] = []
        local: dict[Variable, int] = {}
        for col, arg in enumerate(atom.args):
            if is_constant(arg):
                const_checks.append((col, arg))  # type: ignore[arg-type]
            elif arg in slots:
                key_slots.append(slots[arg])  # type: ignore[index]
                key_cols.append(col)
            elif arg in local:
                dup_checks.append((local[arg], col))  # type: ignore[index]
            else:
                local[arg] = col  # type: ignore[index]
                out_cols.append(col)
                out_vars.append(arg)  # type: ignore[arg-type]
        steps.append(
            _HashJoin(
                atom.predicate, atom.arity, key_slots, key_cols,
                const_checks, dup_checks, out_cols,
            )
        )
        join_vars = [
            variable for variable, slot in slots.items() if slot in key_slots
        ]
        notes: list[str] = []
        if join_vars:
            notes.append("join on " + ", ".join(str(v) for v in join_vars))
        elif slots:
            notes.append("cartesian")
        else:
            notes.append("scan")
        if const_checks:
            notes.append(
                "filter "
                + ", ".join(f"col{col}={value}" for col, value in const_checks)
            )
        if out_vars:
            notes.append("binds " + ", ".join(str(v) for v in out_vars))
        if estimate is not None:
            expected = estimate(atom, set(slots))
            if expected is not None:
                notes.append(f"est~{expected:.0f} rows")
        described.append(f"hash_join {atom} [{'; '.join(notes)}]")
        for variable in out_vars:
            slots[variable] = len(slots)

    for atom in negated:
        key_slots = []
        key_cols = []
        const_checks = []
        for col, arg in enumerate(atom.args):
            if is_constant(arg):
                const_checks.append((col, arg))  # type: ignore[arg-type]
            elif arg in slots:
                key_slots.append(slots[arg])  # type: ignore[index]
                key_cols.append(col)
            else:
                raise SafetyError(
                    f"negated atom {atom} uses variable {arg} not bound by "
                    "the positive conjuncts"
                )
        steps.append(
            _AntiJoin(atom.predicate, atom.arity, key_slots, key_cols, const_checks)
        )
        described.append(f"anti_join not {atom}")

    schema = tuple(sorted(slots, key=slots.__getitem__))
    return ConjunctionPlan(schema, steps, described)


def compile_rule(rule: Rule, estimate: CostEstimator | None = None) -> RulePlan:
    """Compile one rule into a physical plan with head projection.

    Raises :class:`SafetyError` when a head variable is not bound by the
    body (the derived head would not be ground).
    """
    plan = compile_conjunction(rule.body, rule.negated, estimate=estimate)
    slot_of = {variable: i for i, variable in enumerate(plan.schema)}
    template: list[tuple[bool, object]] = []
    for arg in rule.head.args:
        if is_constant(arg):
            template.append((True, arg))
        elif arg in slot_of:
            template.append((False, slot_of[arg]))
        else:
            raise SafetyError(
                f"derived head is not ground: {rule.head} (rule {rule})"
            )
    return RulePlan(rule, plan, template)


def substitutions_from_batch(
    plan: ConjunctionPlan, batch: Iterable[tuple]
) -> Iterable:
    """Adapt a batch back into :class:`Substitution` objects (one per row).

    Used where callers expect the tuple-at-a-time interface (e.g. the
    public :func:`~repro.engine.evaluate.evaluate_conjunction`).
    """
    from repro.logic.substitution import Substitution

    schema = plan.schema
    for binding in batch:
        yield Substitution(dict(zip(schema, binding)))
