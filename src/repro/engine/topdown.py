"""Top-down, query-driven evaluation with call-pattern tabling.

A QSQ/OLDT-style alternative to the bottom-up engine: goals are solved by
resolution against the rules, and every IDB *call pattern* (predicate plus
the constants bound at call time) gets a table of ground answers.  Tables
are recomputed in passes until a global fixpoint, which handles recursion
soundly and completely for range-restricted Datalog while touching only the
part of the IDB the query actually needs — on selective queries this engine
wins; on full scans the bottom-up engine does (benchmark S1).
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.catalog.database import KnowledgeBase
from repro.catalog.relation import Row
from repro.engine.guard import ResourceGuard
from repro.engine.joins import bind_row, join_conjunction
from repro.engine.safety import check_rule_safety
from repro.logic.atoms import Atom
from repro.logic.rename import VariableRenamer
from repro.logic.substitution import Substitution
from repro.logic.terms import Term, Variable, is_constant
from repro.logic.unify import unify

#: A call key: predicate name plus, per argument, either the bound constant
#: or the index of the first argument sharing the same (unbound) variable.
CallKey = tuple[str, tuple[object, ...]]


def call_key(atom: Atom) -> CallKey:
    """Canonical key of a call pattern (variable names abstracted away)."""
    first_seen: dict[Term, int] = {}
    signature: list[object] = []
    for index, arg in enumerate(atom.args):
        if is_constant(arg):
            signature.append(("c", arg))
        else:
            if arg not in first_seen:
                first_seen[arg] = index
            signature.append(("v", first_seen[arg]))
    return (atom.predicate, tuple(signature))


def key_atom(key: CallKey) -> Atom:
    """A representative atom for a call key (canonical variable names)."""
    predicate, signature = key
    args: list[Term] = []
    for index, entry in enumerate(signature):
        tag, value = entry  # type: ignore[misc]
        if tag == "c":
            args.append(value)  # type: ignore[arg-type]
        else:
            args.append(Variable(f"A{value}"))
    return Atom(predicate, args)


class TopDownEngine:
    """Query-driven evaluator with per-call-pattern answer tables.

    ``max_table_rows`` is the legacy table budget — shorthand for
    ``guard=ResourceGuard(max_facts=N)`` (each tabled answer counts as one
    derived fact).  A ``guard`` additionally enforces deadlines, step
    budgets, and cooperative cancellation.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        max_table_rows: int | None = None,
        guard: ResourceGuard | None = None,
        tracer=None,
    ) -> None:
        if max_table_rows is not None and max_table_rows < 1:
            raise ValueError(
                f"max_table_rows must be at least 1, got {max_table_rows!r} "
                "(omit the argument to disable the cap)"
            )
        self._kb = kb
        self._max_rows = max_table_rows
        # An externally supplied guard is shared with the negation helper
        # engine (one global account); the legacy cap builds a private
        # guard per engine, preserving the historical per-engine semantics.
        self._shared_guard = guard
        if guard is None and max_table_rows is not None:
            guard = ResourceGuard(max_facts=max_table_rows)
        self._guard = guard
        self._tracer = tracer
        self._tables: dict[CallKey, set[Row]] = {}
        self._renamer = VariableRenamer()
        self._dirty = False
        self._negation_engine: "TopDownEngine | None" = None

    # -- public API -------------------------------------------------------------

    def query(self, conjuncts: Sequence[Atom]) -> Iterator[Substitution]:
        """All substitutions satisfying the conjunction.

        The first pass registers and saturates every call pattern the
        conjunction (transitively) makes; the final enumeration then runs
        against complete tables.
        """
        # Saturate: drain the enumeration once to register all calls, loop
        # until no table grows, then enumerate for real.
        self._saturate(conjuncts)
        yield from join_conjunction(self._resolver, conjuncts)

    def table_count(self) -> int:
        """Number of registered call patterns (for diagnostics/benchmarks)."""
        return len(self._tables)

    def answer_count(self) -> int:
        """Total answers across all tables."""
        return sum(len(rows) for rows in self._tables.values())

    # -- internals ---------------------------------------------------------------

    def _saturate(self, conjuncts: Sequence[Atom]) -> None:
        from repro.obs.trace import traced_span

        passes = 0
        while True:
            passes += 1
            if self._guard is not None:
                self._guard.iteration()
            with traced_span(self._tracer, "iteration", index=passes, engine="topdown"):
                self._dirty = False
                before_keys = len(self._tables)
                for _ in join_conjunction(self._resolver, conjuncts):
                    pass
                for key in list(self._tables):
                    self._recompute(key)
                if self._tracer is not None:
                    self._tracer.annotate(
                        call_patterns=self.table_count(),
                        answers_tabled=self.answer_count(),
                    )
                if not self._dirty and len(self._tables) == before_keys:
                    return

    def _resolver(self, atom: Atom, theta: Substitution) -> Iterator[Substitution]:
        predicate = atom.predicate
        kb = self._kb
        if kb.is_edb(predicate):
            relation = kb.relation(predicate)
            pattern = [arg if is_constant(arg) else None for arg in atom.args]
            # Large relations under the numpy backend resolve the pattern
            # as one vectorized columnar scan over the interned mirror,
            # yielding the stored constant rows directly; otherwise the
            # per-column index lookup runs.  bind_row still enforces
            # repeated-variable consistency either way.
            rows = relation.columnar_lookup(pattern)
            if rows is None:
                rows = relation.lookup(pattern)
            for row in rows:
                extended = bind_row(atom, row, theta)
                if extended is not None:
                    yield extended
            return
        if kb.is_idb(predicate):
            key = call_key(atom)
            if key not in self._tables:
                self._tables[key] = set()
                self._dirty = True
                self._recompute(key)
            for row in list(self._tables[key]):
                extended = bind_row(atom, row, theta)
                if extended is not None:
                    yield extended
            return
        return  # undefined predicate: empty extension

    def _negated_holds(self, atom: Atom) -> bool:
        """Whether a ground negated subgoal is derivable (closed world).

        Decided by a *separate* evaluator so the check always sees a fully
        saturated view of the (lower-stratum) predicate — an in-progress
        table of this engine could transiently under-report and negation is
        not monotone.  Stratification bounds the helper-engine nesting by
        the number of strata.
        """
        if self._negation_engine is None:
            self._negation_engine = TopDownEngine(
                self._kb, self._max_rows, guard=self._shared_guard,
                tracer=self._tracer,
            )
        return next(iter(self._negation_engine.query((atom,))), None) is not None

    def _negatives_absent(self, rule, theta: Substitution) -> bool:
        from repro.errors import SafetyError

        for atom in rule.negated:
            instantiated = theta.apply(atom)
            if not instantiated.is_ground():
                raise SafetyError(
                    f"negated atom {instantiated} is not ground at evaluation time"
                )
            predicate = instantiated.predicate
            if self._kb.is_edb(predicate):
                pattern = list(instantiated.args)
                if next(self._kb.relation(predicate).lookup(pattern), None) is not None:
                    return False
            elif self._kb.is_idb(predicate):
                if self._negated_holds(instantiated):
                    return False
        return True

    def _recompute(self, key: CallKey) -> None:
        """One pass of answer derivation for a registered call pattern."""
        goal = key_atom(key)
        table = self._tables[key]
        guard = self._guard
        added = 0
        for rule in self._kb.rules_for(goal.predicate):
            check_rule_safety(rule)
            renamed = self._renamer.rename_rule(rule)
            theta = unify(renamed.head, goal)
            if theta is None:
                continue
            for solution in join_conjunction(self._resolver, theta.apply_all(renamed.body), theta):
                if guard is not None:
                    guard.tick()
                if renamed.negated and not self._negatives_absent(renamed, solution):
                    continue
                head = solution.apply(renamed.head)
                if head.is_ground():
                    row: Row = tuple(head.args)  # type: ignore[assignment]
                    if row not in table:
                        table.add(row)
                        added += 1
                        self._dirty = True
        if guard is not None and added:
            guard.count_facts(
                added,
                detail=(
                    f"while tabling {goal.predicate} "
                    f"({self.answer_count()} rows tabled across "
                    f"{self.table_count()} call patterns)"
                ),
            )
        if self._tracer is not None and added:
            self._tracer.count("facts_derived", added)
