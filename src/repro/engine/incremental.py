"""Incremental maintenance of materialised IDB relations.

A production deductive database does not recompute its derived relations
from scratch on every update.  :class:`MaterializedDatabase` keeps every
IDB predicate materialised and maintains it under fact insertions
(semi-naive delta propagation) and deletions (the classic
**delete-and-rederive / DRed** algorithm: overdelete everything whose
derivation may use the deleted facts, then rederive what is still supported,
propagating rederivations as insertions).

Scope: positive programs are maintained incrementally.  When the rule set
uses stratified negation, updates fall back to full recomputation (an
insertion may then *remove* derived facts; a counting/DRed treatment of
negation is out of scope).  :attr:`MaterializedDatabase.incremental`
reports which mode is active.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import CatalogError
from repro.catalog.database import KnowledgeBase
from repro.catalog.relation import Relation, Row
from repro.engine.joins import bind_row, join_conjunction
from repro.engine.seminaive import SemiNaiveEngine
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule
from repro.logic.substitution import Substitution
from repro.logic.terms import is_constant
from repro.logic.unify import match

#: A per-predicate set of rows.
Delta = dict[str, set[Row]]


def _split_body(body, index):
    """Split a rule body around the delta occurrence at *index*.

    Comparisons are state-free filters, so any prefix comparison whose
    variables are not bound by the prefix's positive atoms (or the delta
    atom itself) is moved to the suffix, where its binders live — otherwise
    the split join could not evaluate it.
    """
    chosen = body[index]
    raw_prefix = body[:index]
    suffix = list(body[index + 1 :])
    bound = set(chosen.variables())
    for atom in raw_prefix:
        if not atom.is_comparison():
            bound.update(atom.variables())
    prefix = []
    for atom in raw_prefix:
        if atom.is_comparison() and not set(atom.variables()) <= bound:
            suffix.insert(0, atom)
        else:
            prefix.append(atom)
    return prefix, chosen, suffix


#: Maintenance strategies.
STRATEGY_DRED = "dred"
STRATEGY_COUNTING = "counting"
STRATEGY_AUTO = "auto"
STRATEGY_RECOMPUTE = "recompute"


class MaterializedDatabase:
    """A knowledge base with all IDB relations materialised and maintained.

    The wrapped :class:`KnowledgeBase` is mutated by :meth:`insert` /
    :meth:`delete`; the derived relations are kept consistent with it.  The
    rule set is fixed at construction time (rule changes require a new
    instance).

    ``strategy`` selects the maintenance algorithm:

    * ``"dred"`` — delete-and-rederive; handles recursion.
    * ``"counting"`` — exact derivation counts per fact; deletion is then a
      decrement instead of an overdelete/rederive sweep, but the algorithm
      is only sound for **non-recursive** programs (a cyclic derivation
      would need an infinite count).
    * ``"auto"`` (default) — counting when the program is positive and
      non-recursive, DRed when it is positive and recursive, full
      recomputation when it uses negation.
    """

    def __init__(
        self, kb: KnowledgeBase, strategy: str = STRATEGY_AUTO, guard=None
    ) -> None:
        self._kb = kb
        #: Optional :class:`~repro.engine.guard.ResourceGuard` governing
        #: recomputations and maintenance propagation.
        self._guard = guard
        self._rules: list[Rule] = kb.rules()
        positive = all(rule.is_positive() for rule in self._rules)
        recursive = bool(kb.dependency_graph().recursive_predicates())
        if strategy == STRATEGY_AUTO:
            if not positive:
                strategy = STRATEGY_RECOMPUTE
            elif recursive:
                strategy = STRATEGY_DRED
            else:
                strategy = STRATEGY_COUNTING
        if strategy == STRATEGY_COUNTING and recursive:
            raise CatalogError(
                "counting maintenance is unsound for recursive programs; "
                "use strategy='dred'"
            )
        if strategy in (STRATEGY_DRED, STRATEGY_COUNTING) and not positive:
            raise CatalogError(
                f"strategy {strategy!r} requires a positive program; "
                "negation falls back to strategy='recompute'"
            )
        if strategy not in (STRATEGY_DRED, STRATEGY_COUNTING, STRATEGY_RECOMPUTE):
            raise CatalogError(f"unknown maintenance strategy: {strategy!r}")
        self.strategy = strategy
        self.incremental = strategy != STRATEGY_RECOMPUTE
        self._strata: list[list[str]] = kb.dependency_graph().evaluation_strata(
            set(kb.idb_predicates())
        )
        self._derived: dict[str, Relation] = {}
        self._counts: dict[str, dict[Row, int]] = {}
        self._recompute_all()

    # -- public API ----------------------------------------------------------------

    @classmethod
    def for_views(
        cls,
        kb: KnowledgeBase,
        derived: dict[str, Relation],
        predicates: set[str],
        guard=None,
    ) -> "MaterializedDatabase":
        """A maintainer over externally owned materialisations.

        Built for the view cache (:mod:`repro.engine.viewcache`): *derived*
        holds already-materialised relations for exactly *predicates* —
        consistent with some *past* EDB state — and :meth:`apply_edb_delta`
        brings them up to the current one.  Maintenance is restricted to
        *predicates* (whose rules must be positive and self-contained: every
        IDB predicate a rule reads is in the set) and uses DRed for
        deletions, semi-naive propagation for insertions.  Unlike the normal
        constructor, nothing is recomputed here.
        """
        self = cls.__new__(cls)
        self._kb = kb
        self._guard = guard
        self._rules = [r for r in kb.rules() if r.head.predicate in predicates]
        if any(not rule.is_positive() for rule in self._rules):
            raise CatalogError(
                "view maintenance covers positive rules only; recompute "
                "negated programs from scratch"
            )
        self.strategy = STRATEGY_DRED
        self.incremental = True
        self._strata = kb.dependency_graph().evaluation_strata(set(predicates))
        self._derived = derived
        self._counts = {}
        return self

    def apply_edb_delta(self, added: Delta, removed: Delta) -> None:
        """Propagate already-applied EDB changes into the materialisations.

        The stored relations must already reflect the change: *removed* rows
        are gone from them, *added* rows are present.  Deletions run first
        (DRed over-delete/rederive against the current state), then
        insertions propagate semi-naively; with positive rules either order
        reaches the same fixpoint, the deletions-first order just keeps the
        rederivation frontier smaller.
        """
        removed = {p: set(rows) for p, rows in removed.items() if rows}
        added = {p: set(rows) for p, rows in added.items() if rows}
        if removed:
            self._dred(removed)
        if added:
            self._propagate_insertions(added)

    @property
    def kb(self) -> KnowledgeBase:
        """The underlying knowledge base."""
        return self._kb

    def relation(self, predicate: str) -> Relation:
        """The current (stored or derived) relation of a predicate."""
        if self._kb.is_edb(predicate):
            return self._kb.relation(predicate)
        if predicate in self._derived:
            return self._derived[predicate]
        raise CatalogError(f"unknown or ruleless predicate: {predicate}")

    def rows(self, predicate: str) -> set[Row]:
        """The current rows of a predicate, as a set."""
        return set(self.relation(predicate).rows())

    def holds(self, atom: Atom) -> bool:
        """Whether a ground atom is currently true."""
        if not atom.is_ground():
            raise CatalogError(f"holds() needs a ground atom, got {atom}")
        relation = self.relation(atom.predicate)
        return next(relation.lookup(list(atom.args)), None) is not None

    def insert(self, predicate: str, *values: object) -> bool:
        """Insert one EDB fact, maintaining every derived relation.

        Returns ``False`` when the fact was already present.  The update is
        atomic: a failure during propagation (a guard trip, an injected
        fault) restores the stored fact and every derived relation.
        """
        if not self._kb.is_edb(predicate):
            raise CatalogError(
                f"facts can only be inserted into EDB predicates, not {predicate}"
            )
        staged = self._begin(predicate)
        try:
            if not self._kb.add_fact(predicate, *values):
                return False
            if not self.incremental:
                self._recompute_all()
                return True
            row: Row = tuple(Atom(predicate, values).args)  # type: ignore[assignment]
            if self.strategy == STRATEGY_COUNTING:
                self._counting_update({predicate: {row}}, sign=+1)
            else:
                self._propagate_insertions({predicate: {row}})
            return True
        except BaseException:
            self._restore(predicate, staged)
            raise

    def delete(self, predicate: str, *values: object) -> bool:
        """Delete one EDB fact, maintaining every derived relation (DRed).

        Returns ``False`` when the fact was absent.  Atomic like
        :meth:`insert`: a failed maintenance sweep restores the fact and the
        derived relations.
        """
        if not self._kb.is_edb(predicate):
            raise CatalogError(
                f"facts can only be deleted from EDB predicates, not {predicate}"
            )
        atom = Atom(predicate, values)
        row: Row = tuple(atom.args)  # type: ignore[assignment]
        staged = self._begin(predicate)
        try:
            if not self._kb.relation(predicate).delete(row):
                return False
            if not self.incremental:
                self._recompute_all()
                return True
            if self.strategy == STRATEGY_COUNTING:
                self._counting_update({predicate: {row}}, sign=-1)
            else:
                self._dred({predicate: {row}})
            return True
        except BaseException:
            self._restore(predicate, staged)
            raise

    # -- internals --------------------------------------------------------------------

    def _begin(self, predicate: str):
        """Checkpoint the state one update can change.

        The stored relation of *predicate* plus every materialised relation
        of a predicate that (transitively) depends on it; unrelated derived
        relations are not copied.  Checkpoints are shallow row-set copies.
        """
        graph = self._kb.dependency_graph()
        affected = [
            p for p in self._derived if predicate in graph.dependencies(p)
        ]
        return (
            self._kb.relation(predicate).checkpoint(),
            self._derived,
            {p: self._derived[p].checkpoint() for p in affected},
            {p: dict(c) for p, c in self._counts.items()} if self._counts else None,
        )

    def _restore(self, predicate: str, staged) -> None:
        """Undo a failed update from its :meth:`_begin` checkpoint."""
        edb, derived_ref, derived_rows, counts = staged
        self._kb.relation(predicate).restore(edb)
        # The recompute path reassigns ``self._derived`` wholesale; point it
        # back at the pre-update mapping before restoring touched row sets.
        self._derived = derived_ref
        for name, snapshot in derived_rows.items():
            self._derived[name].restore(snapshot)
        if counts is not None:
            self._counts = counts

    def _recompute_all(self) -> None:
        engine = SemiNaiveEngine(self._kb, guard=self._guard)
        self._derived = dict(engine.evaluate(None))
        for predicate in self._kb.idb_predicates():
            self._derived.setdefault(
                predicate, Relation(self._kb.schema(predicate).arity)
            )
        if self.strategy == STRATEGY_COUNTING:
            self._initial_counts()

    def _initial_counts(self) -> None:
        """Derivation counts per fact (counting strategy, non-recursive)."""
        resolver = self._resolver_with()
        self._counts = {p: {} for p in self._kb.idb_predicates()}
        for rule in self._rules:
            counts = self._counts[rule.head.predicate]
            for theta in join_conjunction(resolver, rule.body):
                head = theta.apply(rule.head)
                if head.is_ground():
                    row = tuple(head.args)
                    counts[row] = counts.get(row, 0) + 1

    def _resolver_with(self, extra: Delta | None = None, exclude: Delta | None = None):
        """A resolver over the current relations, with optional adjustments.

        ``extra`` re-offers rows that were (or are being) physically removed
        (overdeletion and the deletion-side "old view"); ``exclude`` hides
        rows (the insertion-side "old view" of the counting update).
        """

        def resolve(atom: Atom, theta: Substitution) -> Iterator[Substitution]:
            predicate = atom.predicate
            if self._kb.is_edb(predicate):
                relation = self._kb.relation(predicate)
            elif predicate in self._derived:
                relation = self._derived[predicate]
            else:
                relation = None
            hidden = exclude.get(predicate, set()) if exclude else set()
            if relation is not None:
                pattern = [arg if is_constant(arg) else None for arg in atom.args]
                for row in relation.lookup(pattern):
                    if row in hidden:
                        continue
                    extended = bind_row(atom, row, theta)
                    if extended is not None:
                        yield extended
            if extra is not None and predicate in extra:
                seen = relation
                for row in extra[predicate]:
                    if row in hidden:
                        continue
                    if seen is not None and row in seen:
                        continue  # already yielded from the relation
                    extended = bind_row(atom, row, theta)
                    if extended is not None:
                        yield extended

        return resolve

    def _fire_with_delta(
        self, rule: Rule, delta: Delta, extra: Delta | None = None
    ) -> Iterator[Row]:
        """Head rows of *rule* whose derivation uses at least one delta row.

        One body occurrence at a time is restricted to the delta; the others
        read the full relations (the standard semi-naive rewriting).
        """
        resolver = self._resolver_with(extra=extra)
        for index, atom in enumerate(rule.body):
            if atom.is_comparison() or atom.predicate not in delta:
                continue
            rest = tuple(rule.body[:index]) + tuple(rule.body[index + 1 :])
            # Bind the delta row first so the remaining join is driven by
            # its constants (index probes instead of full scans).
            for row in delta[atom.predicate]:
                if self._guard is not None:
                    self._guard.tick()
                theta = bind_row(atom, row, Substitution.EMPTY)
                if theta is None:
                    continue
                for theta2 in join_conjunction(resolver, rest, theta):
                    head = theta2.apply(rule.head)
                    if head.is_ground():
                        yield tuple(head.args)  # type: ignore[misc]

    def _propagate_insertions(self, delta: Delta) -> None:
        """Semi-naive insertion propagation through the strata."""
        accumulated: Delta = {p: set(rows) for p, rows in delta.items()}
        for stratum in self._strata:
            stratum_rules = [rule for p in stratum for rule in self._kb.rules_for(p)]
            current: Delta = {p: set(rows) for p, rows in accumulated.items()}
            while current:
                if self._guard is not None:
                    self._guard.iteration()
                new_rows: Delta = {}
                for rule in stratum_rules:
                    relation = self._derived[rule.head.predicate]
                    for row in self._fire_with_delta(rule, current):
                        if row not in relation and row not in new_rows.get(
                            rule.head.predicate, set()
                        ):
                            new_rows.setdefault(rule.head.predicate, set()).add(row)
                for predicate, rows in new_rows.items():
                    self._derived[predicate].insert_many(rows)
                    accumulated.setdefault(predicate, set()).update(rows)
                current = new_rows

    def _dred(self, deleted: Delta) -> None:
        """Delete-and-rederive after EDB deletions."""
        # Phase 1: overdelete.  Joins must see the pre-deletion state; the
        # already-removed EDB rows (and, transitively, the overdeleted IDB
        # rows once removed) are offered back through ``extra``.
        overdeleted: Delta = {p: set(rows) for p, rows in deleted.items()}
        frontier: Delta = {p: set(rows) for p, rows in deleted.items()}
        while frontier:
            if self._guard is not None:
                self._guard.iteration()
            next_frontier: Delta = {}
            for rule in self._rules:
                head_pred = rule.head.predicate
                relation = self._derived[head_pred]
                for row in self._fire_with_delta(rule, frontier, extra=overdeleted):
                    if row in overdeleted.get(head_pred, set()):
                        continue
                    if row in relation:
                        next_frontier.setdefault(head_pred, set()).add(row)
                        overdeleted.setdefault(head_pred, set()).add(row)
            frontier = next_frontier
        for predicate, rows in overdeleted.items():
            if predicate in self._derived:
                for row in rows:
                    self._derived[predicate].delete(row)

        # Phase 2: rederive.  An overdeleted IDB row returns when some rule
        # still derives it from the remaining state; returns propagate as
        # insertions (they may re-support other overdeleted rows in higher
        # strata or later semi-naive rounds).
        rederived: Delta = {}
        for stratum in self._strata:
            # Within a recursive stratum, rederivation itself must reach a
            # fixpoint: a row that comes back can support another candidate.
            changed = True
            while changed:
                changed = False
                for predicate in stratum:
                    candidates = overdeleted.get(predicate, set()) - self.rows(predicate)
                    if not candidates:
                        continue
                    supported = self._rederivable(predicate, candidates)
                    if supported:
                        self._derived[predicate].insert_many(supported)
                        rederived.setdefault(predicate, set()).update(supported)
                        changed = True
        if rederived:
            self._propagate_insertions(rederived)

    # -- counting strategy --------------------------------------------------------

    def _count_derivations(self, rule: Rule, delta: Delta, sign: int) -> Iterator[Row]:
        """Head rows of derivations gained (+1) or lost (-1), one per derivation.

        The standard disjoint decomposition over the first delta occurrence:
        earlier atoms read the *old* state, the chosen occurrence reads the
        delta, later atoms read the *new* state.  For insertions (delta rows
        already stored) old = current minus delta; for deletions (delta rows
        already removed) old = current plus delta.
        """
        if sign > 0:
            old_resolver = self._resolver_with(exclude=delta)
            new_resolver = self._resolver_with()
        else:
            old_resolver = self._resolver_with(extra=delta)
            new_resolver = self._resolver_with()
        for index, atom in enumerate(rule.body):
            if atom.is_comparison() or atom.predicate not in delta:
                continue
            prefix, _chosen, suffix = _split_body(rule.body, index)
            # Bind the delta row first: the old-view prefix join and the
            # new-view suffix join are then driven by its constants.  The
            # two sides must stay separate (disjoint decomposition), so
            # joins cannot be merged into one reordered conjunction.
            for row in delta[atom.predicate]:
                theta = bind_row(atom, row, Substitution.EMPTY)
                if theta is None:
                    continue
                for theta2 in join_conjunction(old_resolver, prefix, theta):
                    for theta3 in join_conjunction(new_resolver, suffix, theta2):
                        head = theta3.apply(rule.head)
                        if head.is_ground():
                            yield tuple(head.args)  # type: ignore[misc]

    def _counting_update(self, delta: Delta, sign: int) -> None:
        """Propagate an EDB change through the (non-recursive) strata."""
        pending: Delta = {p: set(rows) for p, rows in delta.items()}
        for stratum in self._strata:
            for predicate in stratum:
                counts = self._counts[predicate]
                relation = self._derived[predicate]
                changed: set[Row] = set()
                for rule in self._kb.rules_for(predicate):
                    for row in self._count_derivations(rule, pending, sign):
                        before = counts.get(row, 0)
                        counts[row] = before + sign
                        if sign > 0 and before == 0:
                            changed.add(row)
                        elif sign < 0 and counts[row] == 0:
                            changed.add(row)
                            del counts[row]
                        elif sign < 0 and counts[row] < 0:
                            raise AssertionError(
                                f"negative derivation count for {predicate}{row}"
                            )
                if not changed:
                    continue
                if sign > 0:
                    relation.insert_many(changed)
                else:
                    for row in changed:
                        relation.delete(row)
                pending.setdefault(predicate, set()).update(changed)

    def derivation_count(self, atom: Atom) -> int:
        """The number of derivations of a ground IDB atom (counting mode)."""
        if self.strategy != STRATEGY_COUNTING:
            raise CatalogError("derivation counts are tracked by the counting strategy only")
        if not atom.is_ground():
            raise CatalogError(f"derivation_count() needs a ground atom, got {atom}")
        return self._counts.get(atom.predicate, {}).get(tuple(atom.args), 0)  # type: ignore[arg-type]

    # -- DRed helpers --------------------------------------------------------------

    def _rederivable(self, predicate: str, candidates: set[Row]) -> set[Row]:
        """Candidate rows of *predicate* still derivable by some rule."""
        resolver = self._resolver_with()
        supported: set[Row] = set()
        for row in candidates:
            target = Atom(predicate, row)
            for rule in self._kb.rules_for(predicate):
                theta = match(rule.head, target)
                if theta is None:
                    continue
                found = next(
                    iter(join_conjunction(resolver, theta.apply_all(rule.body))), None
                )
                if found is not None:
                    supported.add(row)
                    break
        return supported
