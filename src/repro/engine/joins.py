"""Generic conjunction solving: the tuple-at-a-time reference executor.

Given a *resolver* — a callback that, for a positive atom (with the current
bindings already applied), yields substitutions extending it against some
fact source — :func:`join_conjunction` enumerates all bindings satisfying a
conjunction.  Comparison atoms are evaluated inline: ``=`` may bind a
variable; order comparisons filter once ground.  Conjuncts are greedily
reordered so bound atoms run first (index-friendly) and comparisons run as
soon as they are ground.

This is the *reference* executor: a depth-first nested-loops join, one
substitution per binding.  The top-down engine and other resolver-based
callers (provenance, incremental maintenance) are built on it, and the
bottom-up engine keeps it as the ``executor="nested"`` fallback.  The
set-at-a-time hash-join executor in :mod:`repro.engine.plan` is the fast
path for bottom-up evaluation; :func:`order_conjuncts` and
:func:`relation_cost_estimator` are shared by both.
"""

from __future__ import annotations

from typing import Callable, Iterator, Sequence

from repro.errors import SafetyError
from repro.logic.atoms import Atom
from repro.logic.builtins import evaluate_comparison
from repro.logic.substitution import Substitution
from repro.logic.terms import Variable, is_constant, is_variable
from repro.logic.unify import unify_terms

#: A resolver maps a (partially instantiated) positive atom to candidate
#: substitutions that make it true, each already composed over the input.
Resolver = Callable[[Atom, Substitution], Iterator[Substitution]]

#: A cost estimator: expected number of matching rows for an atom, given
#: which of its variables are already bound.  ``None`` = unknown predicate.
CostEstimator = Callable[[Atom, set[Variable]], float | None]


def _boundness(atom: Atom, bound: set[Variable]) -> float:
    """Fraction of the atom's arguments that are constants or bound vars."""
    if not atom.args:
        return 1.0
    score = 0
    for arg in atom.args:
        if is_constant(arg) or arg in bound:
            score += 1
    return score / len(atom.args)


def order_conjuncts(
    conjuncts: Sequence[Atom],
    initially_bound: set[Variable] | None = None,
    estimate: CostEstimator | None = None,
) -> list[Atom]:
    """Greedy join order: cheapest positive atom next; comparisons ASAP.

    Without an estimator, "cheapest" is "most bound" (fraction of arguments
    that are constants or already-bound variables).  With an estimator, it
    is the lowest expected row count — a small relation beats a large one
    even at equal boundness, the classic cardinality-aware improvement.

    Raises :class:`SafetyError` if an order comparison can never become
    ground (the conjunction is unsafe).
    """
    remaining = list(conjuncts)
    bound: set[Variable] = set(initially_bound or ())
    ordered: list[Atom] = []
    while remaining:
        # 1. Any comparison that is ready?  '=' is ready when one side is
        #    bound/constant; other comparisons when both sides are.
        ready = None
        for atom in remaining:
            if not atom.is_comparison():
                continue
            sides_bound = [
                is_constant(arg) or arg in bound for arg in atom.args
            ]
            if atom.predicate == "=" and any(sides_bound):
                ready = atom
                break
            if all(sides_bound):
                ready = atom
                break
        if ready is None:
            # 2. The cheapest positive atom.
            positives = [a for a in remaining if not a.is_comparison()]
            if positives:
                if estimate is not None:
                    def cost(atom: Atom) -> tuple:
                        estimated = estimate(atom, bound)
                        if estimated is None:
                            estimated = float("inf")
                        return (estimated, -_boundness(atom, bound), remaining.index(atom))

                    ready = min(positives, key=cost)
                else:
                    ready = max(
                        positives,
                        key=lambda a: (_boundness(a, bound), -remaining.index(a)),
                    )
            else:
                # Only comparisons left and none ready.
                leftovers = " and ".join(str(a) for a in remaining)
                raise SafetyError(f"comparisons can never become ground: {leftovers}")
        remaining.remove(ready)
        ordered.append(ready)
        bound.update(ready.variables())
    return ordered


def relation_cost_estimator(relation_for) -> CostEstimator:
    """A cost estimator from a ``predicate -> Relation | None`` accessor.

    Expected rows = relation size divided by the distinct count of each
    bound column (the standard independence assumption).
    """

    def estimate(atom: Atom, bound: set[Variable]) -> float | None:
        relation = relation_for(atom.predicate)
        if relation is None:
            return None
        size = float(len(relation))
        if size == 0:
            return 0.0
        for column, arg in enumerate(atom.args):
            if is_constant(arg) or arg in bound:
                distinct = relation.distinct_count(column)
                if distinct:
                    size /= distinct
        return max(size, 0.001)

    return estimate


def solve_comparison(atom: Atom, theta: Substitution) -> Iterator[Substitution]:
    """Solve one comparison conjunct under the current bindings.

    ``=`` binds an unbound side; ground comparisons filter.  A non-ground
    order comparison raises :class:`SafetyError` (ordering should have
    prevented it).
    """
    instantiated = theta.apply(atom)
    left, right = instantiated.args
    if instantiated.predicate == "=":
        extended = unify_terms(left, right, theta)
        if extended is not None:
            yield extended
        return
    if not instantiated.is_ground():
        raise SafetyError(f"comparison {instantiated} is not ground at evaluation time")
    if evaluate_comparison(instantiated):
        yield theta


def join_conjunction(
    resolver: Resolver,
    conjuncts: Sequence[Atom],
    theta: Substitution | None = None,
    reorder: bool = True,
    estimate: CostEstimator | None = None,
) -> Iterator[Substitution]:
    """Enumerate substitutions satisfying every conjunct.

    The enumeration is a depth-first nested-loops join; the resolver is
    expected to use indexes for atoms with bound arguments.  ``estimate``
    (see :func:`relation_cost_estimator`) switches the join order from
    boundness-greedy to cardinality-aware.
    """
    start = theta if theta is not None else Substitution.EMPTY
    ordered = (
        order_conjuncts(conjuncts, set(start.domain()), estimate=estimate)
        if reorder
        else list(conjuncts)
    )

    def recurse(index: int, current: Substitution) -> Iterator[Substitution]:
        if index == len(ordered):
            yield current
            return
        atom = ordered[index]
        if atom.is_comparison():
            for extended in solve_comparison(atom, current):
                yield from recurse(index + 1, extended)
            return
        for extended in resolver(current.apply(atom), current):
            yield from recurse(index + 1, extended)

    yield from recurse(0, start)


def bind_row(atom: Atom, row: Sequence[object], theta: Substitution) -> Substitution | None:
    """Extend *theta* so the atom's arguments match a ground row.

    *atom* should already have *theta* applied.  Returns ``None`` when a
    constant argument disagrees with the row.
    """
    current = theta
    for arg, value in zip(atom.args, row):
        if is_variable(arg):
            applied = current.apply_term(arg)
            if is_variable(applied):
                current = current.bind(applied, value)  # type: ignore[arg-type]
            elif applied != value:
                return None
        elif arg != value:
            return None
    return current
