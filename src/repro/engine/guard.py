"""Unified resource governance for query evaluation.

Every evaluation path of the system — the semi-naive engine (both the
``batch`` and ``nested`` executors), the top-down tabled engine, magic-sets
evaluation, incremental view maintenance, and the ``describe``
derivation-tree search — can be governed by one :class:`ResourceGuard`
carrying:

* a **wall-clock deadline** (seconds of evaluation time);
* a **derived-fact budget** (rows materialised/tabled across the query);
* **step / depth / iteration budgets** (resolution steps, derivation-tree
  depth, fixpoint iterations);
* a cooperative :class:`CancellationToken` (another thread may cancel a
  running query at the next checkpoint).

Engines call the guard's checkpoint methods (:meth:`ResourceGuard.tick`,
:meth:`~ResourceGuard.count_facts`, :meth:`~ResourceGuard.iteration`,
:meth:`~ResourceGuard.check`, :meth:`~ResourceGuard.check_depth`) on their
hot paths.  On exhaustion the guard raises a
:class:`~repro.errors.ResourceExhausted` error — by default
:class:`~repro.errors.EvaluationLimitError`; the derivation-tree search
passes ``error=SearchBudgetExceeded`` so knowledge-query callers keep their
historical exception type.  Both carry the structured fields ``budget``,
``consumed`` and ``limit``.

Two exhaustion **modes**:

``"strict"`` (default)
    the error propagates to the caller;
``"degrade"``
    the boundary API (:func:`~repro.engine.evaluate.retrieve`,
    :func:`~repro.core.describe.describe`) catches the error, *disarms* the
    guard, and returns the partial answer computed so far, tagged with a
    :class:`Diagnostics` record marking it a **sound under-approximation**
    (every returned row/rule is genuinely derivable — bottom-up derivation
    and the derivation-tree search only ever produce sound answers, so
    stopping early loses completeness, never soundness).

A guard attached to a :class:`~repro.session.Session` is a *specification*;
each query runs under a fresh activation (:meth:`ResourceGuard.fresh`) so
deadlines and counters are per-query while the cancellation token is shared.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import EvaluationLimitError, QueryCancelled, ResourceExhausted

#: Exhaustion modes.
MODES = ("strict", "degrade")

#: Budget kinds reported in ``ResourceExhausted.budget`` / ``Diagnostics``.
BUDGET_DEADLINE = "deadline"
BUDGET_FACTS = "facts"
BUDGET_STEPS = "steps"
BUDGET_DEPTH = "depth"
BUDGET_ITERATIONS = "iterations"
BUDGET_CANCELLED = "cancelled"

#: How many ticks pass between wall-clock reads (``perf_counter`` is cheap
#: but not free; coarse budgets don't need a syscall per step).
_TIME_STRIDE = 64


class CancellationToken:
    """A cooperative, thread-safe cancellation flag.

    Hand the same token to one or more guards; calling :meth:`cancel` (from
    any thread) makes every governed evaluation raise
    :class:`~repro.errors.QueryCancelled` at its next checkpoint.
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        """Request cancellation; idempotent."""
        self._event.set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation has been requested."""
        return self._event.is_set()


@dataclass
class Diagnostics:
    """How a governed query ended.

    ``complete`` is true for an exhaustive answer; a degraded answer has
    ``complete=False`` plus the budget that tripped, consumption at trip
    time, the configured limit, and elapsed wall-clock seconds.  A degraded
    answer is a *sound under-approximation*: everything in it is derivable,
    but more may be.
    """

    complete: bool = True
    budget: str | None = None
    consumed: object = None
    limit: object = None
    elapsed_s: float = 0.0
    note: str = ""

    @property
    def degraded(self) -> bool:
        """Whether the answer is partial (a budget tripped)."""
        return not self.complete

    def __str__(self) -> str:
        if self.complete:
            return "complete"
        return (
            f"partial (sound under-approximation): {self.budget} budget "
            f"exhausted after {self.elapsed_s:.4f}s "
            f"(consumed {self.consumed}, limit {self.limit})"
        )


class ResourceGuard:
    """One enforceable budget for a whole query evaluation.

    Parameters
    ----------
    deadline:
        Wall-clock seconds the query may run (measured from the first
        checkpoint); must be positive.
    max_facts:
        Derived/tabled-row budget across every engine the query touches.
    max_steps:
        Resolution/derivation step budget.
    max_depth:
        Derivation-tree depth bound (describe queries).
    max_iterations:
        Fixpoint iteration bound (bottom-up engines).
    token:
        A shared :class:`CancellationToken`; checked at every checkpoint.
    mode:
        ``"strict"`` raises on exhaustion; ``"degrade"`` makes the boundary
        APIs return partial answers tagged with :class:`Diagnostics`.
    """

    def __init__(
        self,
        deadline: float | None = None,
        max_facts: int | None = None,
        max_steps: int | None = None,
        max_depth: int | None = None,
        max_iterations: int | None = None,
        token: CancellationToken | None = None,
        mode: str = "strict",
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown guard mode {mode!r}; expected one of {MODES}")
        if deadline is not None and deadline <= 0:
            raise ValueError(f"deadline must be positive, got {deadline!r}")
        for name, value in (
            ("max_facts", max_facts),
            ("max_steps", max_steps),
            ("max_depth", max_depth),
            ("max_iterations", max_iterations),
        ):
            if value is not None and value < 1:
                raise ValueError(
                    f"{name} must be at least 1, got {value!r} "
                    "(omit the argument to disable the budget)"
                )
        self.deadline = deadline
        self.max_facts = max_facts
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.max_iterations = max_iterations
        self.token = token
        self.mode = mode
        self.steps = 0
        self.facts = 0
        self.iterations = 0
        self.tripped: Diagnostics | None = None
        self._started_at: float | None = None
        self._deadline_at: float | None = None
        self._since_time_check = 0
        self._disarmed = False

    # -- lifecycle ---------------------------------------------------------------

    def fresh(self) -> "ResourceGuard":
        """A new activation of the same specification.

        Counters and the deadline clock restart; the cancellation token is
        shared, so cancelling it stops the new activation too.
        """
        return type(self)(
            deadline=self.deadline,
            max_facts=self.max_facts,
            max_steps=self.max_steps,
            max_depth=self.max_depth,
            max_iterations=self.max_iterations,
            token=self.token,
            mode=self.mode,
        )

    def start(self) -> None:
        """Start the deadline clock (idempotent; checkpoints call this)."""
        if self._started_at is None:
            self._started_at = time.perf_counter()
            if self.deadline is not None:
                self._deadline_at = self._started_at + self.deadline

    def disarm(self) -> None:
        """Stop raising at checkpoints (degrade-mode wrap-up).

        After a budget trips in degrade mode, the boundary API still has to
        assemble the partial answer; disarming lets that wrap-up run without
        re-tripping on every checkpoint.
        """
        self._disarmed = True

    @property
    def elapsed(self) -> float:
        """Seconds since the first checkpoint (0.0 before any)."""
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    def diagnostics(self) -> Diagnostics:
        """The trip record, or a fresh "complete" record if nothing tripped."""
        if self.tripped is not None:
            return self.tripped
        return Diagnostics(complete=True, elapsed_s=self.elapsed)

    # -- checkpoints -------------------------------------------------------------

    def _checkpoint(self) -> None:
        """Hook called on entry to every checkpoint method.

        The fault-injection harness overrides this to raise at a chosen
        checkpoint ordinal, exercising every failure point the guard
        instruments.
        """

    def _trip(self, budget: str, consumed: object, limit: object, message: str, error) -> None:
        self.tripped = Diagnostics(
            complete=False,
            budget=budget,
            consumed=consumed,
            limit=limit,
            elapsed_s=self.elapsed,
            note="sound under-approximation: evaluation stopped early",
        )
        cls = error if error is not None else EvaluationLimitError
        raise cls(message, budget=budget, consumed=consumed, limit=limit)

    def _check_time(self, error) -> None:
        if self.token is not None and self.token.cancelled:
            self.tripped = Diagnostics(
                complete=False,
                budget=BUDGET_CANCELLED,
                consumed=self.steps,
                limit=None,
                elapsed_s=self.elapsed,
                note="sound under-approximation: evaluation cancelled",
            )
            raise QueryCancelled(consumed=self.steps)
        if self._deadline_at is not None:
            now = time.perf_counter()
            if now > self._deadline_at:
                self._trip(
                    BUDGET_DEADLINE,
                    round(now - self._started_at, 6),  # type: ignore[operator]
                    self.deadline,
                    f"deadline of {self.deadline}s exceeded after "
                    f"{now - self._started_at:.4f}s",  # type: ignore[operator]
                    error,
                )

    def tick(self, steps: int = 1, error=None) -> None:
        """One (or *steps*) unit(s) of evaluation work.

        Checks the step budget every call and the deadline/cancellation
        roughly every :data:`_TIME_STRIDE` ticks.
        """
        self._checkpoint()
        if self._disarmed:
            return
        self.start()
        self.steps += steps
        if self.max_steps is not None and self.steps > self.max_steps:
            self._trip(
                BUDGET_STEPS,
                self.steps,
                self.max_steps,
                f"step budget of {self.max_steps} exceeded",
                error,
            )
        self._since_time_check += steps
        if self._since_time_check >= _TIME_STRIDE:
            self._since_time_check = 0
            self._check_time(error)

    def count_facts(self, count: int = 1, error=None, detail: str | None = None) -> None:
        """Record *count* newly derived/tabled facts; check the fact budget.

        *detail* is appended to the error message (e.g. which predicate was
        being tabled when the budget tripped).
        """
        self._checkpoint()
        if self._disarmed:
            return
        self.start()
        self.facts += count
        if self.max_facts is not None and self.facts > self.max_facts:
            message = (
                f"derived-fact budget of {self.max_facts} exceeded "
                f"({self.facts} facts derived)"
            )
            if detail:
                message += f" {detail}"
            self._trip(BUDGET_FACTS, self.facts, self.max_facts, message, error)
        self._check_time(error)

    def iteration(self, error=None) -> None:
        """One fixpoint iteration; checks the iteration budget and deadline."""
        self._checkpoint()
        if self._disarmed:
            return
        self.start()
        self.iterations += 1
        if self.max_iterations is not None and self.iterations > self.max_iterations:
            self._trip(
                BUDGET_ITERATIONS,
                self.iterations,
                self.max_iterations,
                f"iteration budget of {self.max_iterations} exceeded",
                error,
            )
        self._check_time(error)

    def check(self, error=None) -> None:
        """A plain deadline/cancellation checkpoint (no counter)."""
        self._checkpoint()
        if self._disarmed:
            return
        self.start()
        self._check_time(error)

    def check_depth(self, depth: int, error=None) -> None:
        """Check a derivation-tree depth against the depth budget."""
        self._checkpoint()
        if self._disarmed:
            return
        self.start()
        if self.max_depth is not None and depth > self.max_depth:
            self._trip(
                BUDGET_DEPTH,
                depth,
                self.max_depth,
                f"derivation depth budget of {self.max_depth} exceeded",
                error,
            )

    def __repr__(self) -> str:
        budgets = ", ".join(
            f"{name}={value!r}"
            for name, value in (
                ("deadline", self.deadline),
                ("max_facts", self.max_facts),
                ("max_steps", self.max_steps),
                ("max_depth", self.max_depth),
                ("max_iterations", self.max_iterations),
            )
            if value is not None
        )
        return f"ResourceGuard({budgets or 'unbounded'}, mode={self.mode!r})"


def degrade_catch(guard: "ResourceGuard | None", error: ResourceExhausted) -> Diagnostics:
    """Shared degrade-mode handling at an API boundary.

    Re-raises *error* unless *guard* is in degrade mode; otherwise disarms
    the guard (so wrap-up work can finish) and returns the trip diagnostics.
    Cancellation always propagates — the caller asked for the query to
    stop, not for a partial answer.
    """
    if guard is None or guard.mode != "degrade" or isinstance(error, QueryCancelled):
        raise error
    guard.disarm()
    if guard.tripped is not None:
        return guard.tripped
    return Diagnostics(
        complete=False,
        budget=error.budget,
        consumed=error.consumed,
        limit=error.limit,
        elapsed_s=guard.elapsed,
        note="sound under-approximation: evaluation stopped early",
    )


def require_strict(
    guard: "ResourceGuard | None", operation: str, error: type = ValueError
) -> None:
    """Reject degrade-mode guards where a partial search would be unsound.

    Verdict-style queries (necessity tests, possibility tests, concept
    comparison) conclude something from the *absence* of derivations, so a
    silently truncated search could flip their answer.  Those entry points
    accept strict guards only.
    """
    if guard is not None and guard.mode == "degrade":
        raise error(
            f"{operation} needs a complete search for a sound verdict; "
            "a degrade-mode guard would truncate it silently. "
            "Use a strict-mode guard and catch ResourceExhausted instead."
        )
