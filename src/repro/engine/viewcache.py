"""Version-keyed materialized IDB view cache with incremental refresh.

Serving workloads re-issue the same queries against a slowly changing
knowledge base, yet every ``retrieve`` recomputes the full semi-naive
fixpoint from scratch.  :class:`ViewCache` closes that gap: computed IDB
relations are memoized keyed on a **dependency fingerprint** —

* the knowledge base's :attr:`~repro.catalog.database.KnowledgeBase.rules_version`
  (any rule/catalog change invalidates every view), and
* the :attr:`~repro.catalog.relation.Relation.version` of each EDB relation
  the predicate *transitively* depends on (via the dependency graph), so a
  fact inserted into ``enroll`` invalidates ``honor`` but not ``path``.

Nothing subscribes to anything: a mutation simply bumps a counter, and the
next probe notices the mismatch.  Transaction rollback
(:meth:`~repro.catalog.relation.Relation.restore`) bumps the same counters,
so a cache can never serve state from a rolled-back world.

On a stale probe the cache first tries an **incremental refresh**: the
per-relation change journal (:meth:`~repro.catalog.relation.Relation.changes_since`)
reconstructs the net EDB delta since the cached versions, and when it is
small (``incremental_threshold``) the cached relations are repaired in
place through the existing delete-and-rederive / semi-naive propagation
machinery (:meth:`~repro.engine.incremental.MaterializedDatabase.for_views`)
instead of recomputing the fixpoint cold.  Negated rule sets, large deltas,
journal gaps, and rule changes all fall back to a full recompute.

A failure mid-refresh (guard trip, cancellation, injected fault) drops the
affected entries before propagating: the cache is always either consistent
or invalidated, never serving a half-refreshed view.

The cache also memoizes **knowledge-query results** (describe and friends),
which depend only on the rule and constraint sets — never on stored facts —
so their key is just ``(statement, style, config, rules_version,
constraints_version)``.

Only *complete* results are ever cached: an evaluation that tripped a
resource budget (a sound under-approximation) is returned to the caller but
not stored.  Serving a complete cached answer under a budget is always
sound — that is the point: the hot path for an unchanged knowledge base
becomes a dict probe that no budget can trip.

Memory is bounded by ``max_rows`` (total derived rows pinned) with
least-recently-used eviction, and by ``max_statements`` for the knowledge
memo.  :attr:`ViewCache.stats` reports hits, misses, invalidations,
incremental vs full refreshes, evictions, and rows/bytes pinned — surfaced
through ``Session.cache_stats()`` and the ``dbk cache`` subcommand.
"""

from __future__ import annotations

import sys
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

from repro.catalog.database import KnowledgeBase
from repro.catalog.relation import Relation, Row
from repro.engine.guard import ResourceGuard
from repro.engine.incremental import Delta, MaterializedDatabase
from repro.engine.seminaive import SemiNaiveEngine

#: Default ceiling on derived rows pinned across all cached views.
DEFAULT_MAX_ROWS = 1_000_000

#: Default net-delta size (rows) above which a stale view is recomputed
#: cold instead of refreshed incrementally.
DEFAULT_INCREMENTAL_THRESHOLD = 64

#: Default ceiling on memoized knowledge-query results.
DEFAULT_MAX_STATEMENTS = 256


@dataclass
class CacheStats:
    """Counters and gauges describing a :class:`ViewCache`'s behaviour.

    ``hits`` count probes served straight from warm views (a dict probe, no
    derivation at all); ``incremental_refreshes`` served after an in-place
    delta repair; ``misses`` required a full fixpoint recompute.
    ``invalidations`` counts cached views discarded because their
    fingerprint no longer matched.  ``rows_pinned`` / ``bytes_pinned`` are
    current gauges (bytes are an estimate), the rest are monotone counters.
    """

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    incremental_refreshes: int = 0
    full_refreshes: int = 0
    evictions: int = 0
    statement_hits: int = 0
    statement_misses: int = 0
    rows_pinned: int = 0
    bytes_pinned: int = 0

    @property
    def probes(self) -> int:
        """Total data-view probes."""
        return self.hits + self.incremental_refreshes + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of data-view probes served without a full recompute."""
        if not self.probes:
            return 0.0
        return (self.hits + self.incremental_refreshes) / self.probes

    def as_dict(self) -> dict:
        """A JSON-friendly snapshot (counters plus derived rates)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "incremental_refreshes": self.incremental_refreshes,
            "full_refreshes": self.full_refreshes,
            "evictions": self.evictions,
            "statement_hits": self.statement_hits,
            "statement_misses": self.statement_misses,
            "rows_pinned": self.rows_pinned,
            "bytes_pinned": self.bytes_pinned,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass
class _ViewEntry:
    """One materialised IDB relation plus the state it was computed under."""

    relation: Relation
    rules_version: int
    #: EDB dependency name -> its relation version at materialisation time.
    edb_versions: dict[str, int]
    #: Dependency predicates that were undefined at materialisation time
    #: (empty extension); a later definition must invalidate the view.
    undefined: frozenset[str]
    #: LRU clock value of the last probe that served this entry.
    tick: int = 0


def _approx_bytes(relation: Relation) -> int:
    """A cheap size estimate: tuple + per-constant object overhead."""
    per_row = sys.getsizeof(()) + relation.arity * 56
    return len(relation) * per_row


def _net_delta(changes: Sequence[tuple[str, Row]]) -> tuple[set[Row], set[Row]]:
    """Collapse a journal slice into net (added, removed) row sets."""
    added: set[Row] = set()
    removed: set[Row] = set()
    for op, row in changes:
        if op == "+":
            if row in removed:
                removed.discard(row)
            else:
                added.add(row)
        else:
            if row in added:
                added.discard(row)
            else:
                removed.add(row)
    return added, removed


class ViewCache:
    """Materialized IDB views plus a knowledge-query memo for one KB.

    Parameters
    ----------
    kb:
        The knowledge base the cache serves.  A cache is bound to one
        instance; callers handing a different ``kb`` to the evaluation API
        bypass the cache automatically.
    max_rows:
        Total derived rows the cache may pin; least-recently-used views are
        evicted past it.
    incremental_threshold:
        Net EDB delta size (rows) up to which a stale view is refreshed
        in place through delta propagation / DRed; larger deltas recompute.
    max_statements:
        Memoized knowledge-query results retained (LRU).
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        max_rows: int = DEFAULT_MAX_ROWS,
        incremental_threshold: int = DEFAULT_INCREMENTAL_THRESHOLD,
        max_statements: int = DEFAULT_MAX_STATEMENTS,
    ) -> None:
        if max_rows < 1:
            raise ValueError(f"max_rows must be at least 1, got {max_rows!r}")
        if incremental_threshold < 0:
            raise ValueError(
                f"incremental_threshold must be non-negative, got "
                f"{incremental_threshold!r}"
            )
        self._kb = kb
        self.max_rows = max_rows
        self.incremental_threshold = incremental_threshold
        self.max_statements = max_statements
        self._views: dict[str, _ViewEntry] = {}
        self._statements: OrderedDict[tuple, object] = OrderedDict()
        self._clock = 0
        #: The engine of an in-flight full recompute; degrade-mode callers
        #: read sound partial relations from it after a budget trip.
        self._inflight: SemiNaiveEngine | None = None
        self.stats = CacheStats()

    @property
    def kb(self) -> KnowledgeBase:
        """The knowledge base this cache is bound to."""
        return self._kb

    # -- data views ---------------------------------------------------------------

    def evaluate(
        self,
        predicates: Sequence[str],
        executor: str | None = None,
        guard: ResourceGuard | None = None,
        tracer=None,
    ) -> dict[str, Relation]:
        """Materialised relations for the requested IDB predicates.

        Drop-in for :meth:`SemiNaiveEngine.evaluate`: probes the cache,
        refreshes warm-but-stale views incrementally when the EDB delta is
        small, and falls back to a governed full recompute otherwise.  Only
        complete (untripped) computations are stored; a
        :class:`~repro.errors.ResourceExhausted` trip propagates with the
        cache unchanged (stale entries dropped, nothing half-written).
        *tracer* records one ``cache.probe`` span per call whose ``outcome``
        attribute mirrors the :class:`CacheStats` counter the call bumps.
        """
        from repro.obs.trace import traced_span

        kb = self._kb
        self._inflight = None  # drop partials from any previous trip
        if guard is not None:
            # Even a warm probe must observe cancellation and deadlines: a
            # hit performs no derivation, so this is its one checkpoint.
            guard.check()
        wanted = [p for p in predicates if kb.is_idb(p)]
        if not wanted:
            return {}
        graph = kb.dependency_graph()
        closure = set(wanted)
        for predicate in wanted:
            closure.update(q for q in graph.dependencies(predicate) if kb.is_idb(q))
        members = sorted(closure)
        with traced_span(tracer, "cache.probe", predicates=members):
            profiles = {p: self._dependency_profile(p) for p in members}

            if all(self._is_fresh(p, profiles[p]) for p in members):
                self._clock += 1
                for predicate in members:
                    self._views[predicate].tick = self._clock
                self.stats.hits += 1
                if tracer is not None:
                    tracer.annotate(outcome="hit")
                    tracer.count("cache_hits")
                return {p: self._views[p].relation for p in wanted}

            if self._refresh_incrementally(members, profiles, guard, tracer):
                self.stats.incremental_refreshes += 1
                if tracer is not None:
                    tracer.annotate(outcome="incremental")
                    tracer.count("cache_incremental_refreshes")
            else:
                with traced_span(tracer, "cache.recompute", predicates=members):
                    self._recompute(members, profiles, executor, guard, tracer)
                self.stats.misses += 1
                self.stats.full_refreshes += 1
                if tracer is not None:
                    tracer.annotate(outcome="recompute")
                    tracer.count("cache_misses")
            self._evict()
            self._update_gauges()
            return {p: self._views[p].relation for p in wanted}

    def partial_relation(self, predicate: str) -> Relation:
        """A sound (possibly incomplete) relation after a budget trip.

        Full recomputes expose the in-flight engine's partial fixpoint
        (monotone, hence sound).  A trip during an incremental refresh has
        no sound partial state — the half-refreshed relations were dropped —
        so the answer degrades to the empty relation.
        """
        if self._inflight is not None:
            return self._inflight.partial_relation(predicate)
        arity = (
            self._kb.schema(predicate).arity if self._kb.has_predicate(predicate) else 0
        )
        return Relation(arity)

    def invalidate(self, predicate: str | None = None) -> int:
        """Drop one cached view (or all of them); returns how many dropped."""
        if predicate is None:
            dropped = len(self._views)
            self._views.clear()
        else:
            dropped = 1 if self._views.pop(predicate, None) is not None else 0
        self.stats.invalidations += dropped
        self._update_gauges()
        return dropped

    def clear(self) -> None:
        """Drop every cached view and memoized statement result."""
        self.invalidate()
        self._statements.clear()

    def dependency_fingerprint(self, predicates: Sequence[str]) -> tuple:
        """A hashable digest of everything the given predicates depend on.

        Combines the rule-set version, the version of every EDB relation any
        of the predicates transitively depends on (including the predicates
        themselves when stored), and the set of undefined dependencies.  Two
        equal fingerprints guarantee equal answers for any query over these
        predicates, so results memoized under the fingerprint never need
        explicit invalidation — a mutation simply changes the key.
        """
        kb = self._kb
        edb: dict[str, int] = {}
        undefined: set[str] = set()
        for predicate in predicates:
            if kb.is_edb(predicate):
                edb[predicate] = kb.relation(predicate).version
            elif not kb.is_idb(predicate) and not kb.is_builtin(predicate):
                undefined.add(predicate)
            profile_edb, profile_undefined = self._dependency_profile(predicate)
            edb.update(profile_edb)
            undefined.update(profile_undefined)
        return (
            self._kb.rules_version,
            tuple(sorted(edb.items())),
            frozenset(undefined),
        )

    # -- statement memo ------------------------------------------------------------

    def statement_key(self, kind: str, text: str, *extra: object) -> tuple:
        """A memo key for a knowledge query under the current catalog.

        Knowledge answers depend on the rule and constraint sets only, never
        on stored facts, so the key embeds both catalog versions; any rule
        or constraint change silently orphans old entries (evicted LRU).
        """
        return (
            kind,
            text,
            self._kb.rules_version,
            self._kb.constraints_version,
            *extra,
        )

    def lookup_statement(self, key: tuple) -> object | None:
        """The memoized result under *key*, or ``None``."""
        result = self._statements.get(key)
        if result is None:
            self.stats.statement_misses += 1
            return None
        self._statements.move_to_end(key)
        self.stats.statement_hits += 1
        return result

    def store_statement(self, key: tuple, result: object) -> None:
        """Memoize a complete knowledge-query result (LRU-bounded)."""
        self._statements[key] = result
        self._statements.move_to_end(key)
        while len(self._statements) > self.max_statements:
            self._statements.popitem(last=False)

    # -- internals -----------------------------------------------------------------

    def _dependency_profile(
        self, predicate: str
    ) -> tuple[dict[str, int], frozenset[str]]:
        """Current (EDB dependency versions, undefined dependencies)."""
        kb = self._kb
        graph = kb.dependency_graph()
        edb: dict[str, int] = {}
        undefined: set[str] = set()
        for name in graph.dependencies(predicate):
            if kb.is_edb(name):
                edb[name] = kb.relation(name).version
            elif not kb.is_idb(name) and not kb.is_builtin(name):
                undefined.add(name)
        return edb, frozenset(undefined)

    def _is_fresh(
        self, predicate: str, profile: tuple[dict[str, int], frozenset[str]]
    ) -> bool:
        entry = self._views.get(predicate)
        if entry is None:
            return False
        edb_versions, undefined = profile
        return (
            entry.rules_version == self._kb.rules_version
            and entry.edb_versions == edb_versions
            and entry.undefined == undefined
        )

    def _refresh_incrementally(
        self,
        members: list[str],
        profiles: dict[str, tuple[dict[str, int], frozenset[str]]],
        guard: ResourceGuard | None,
        tracer=None,
    ) -> bool:
        """Repair warm-but-stale views in place; ``True`` on success.

        Requires every closure member cached at one consistent EDB snapshot
        under the current rule set, positive rules, reconstructable journals
        for every changed dependency, and a net delta within the threshold.
        """
        kb = self._kb
        rules_version = kb.rules_version
        entries = {p: self._views.get(p) for p in members}
        if any(entry is None for entry in entries.values()):
            return False
        base: dict[str, int] = {}
        for predicate, entry in entries.items():
            if entry.rules_version != rules_version:
                return False
            if entry.undefined != profiles[predicate][1]:
                return False
            for name, version in entry.edb_versions.items():
                if base.setdefault(name, version) != version:
                    return False  # entries cached at different snapshots
        for predicate in members:
            if any(rule.negated for rule in kb.rules_for(predicate)):
                # An insertion can *remove* derived facts under negation;
                # the DRed/propagation repair only covers positive rules.
                return False

        added: Delta = {}
        removed: Delta = {}
        total = 0
        for name, cached_version in base.items():
            relation = kb.relation(name)
            if relation.version == cached_version:
                continue
            changes = relation.changes_since(cached_version)
            if changes is None:
                # Journal gap (restore/clear or window overrun): the repair
                # cannot reconstruct the delta.  Count the fallback so the
                # full recompute that follows is diagnosable (see
                # Relation.journal_resets and Session.cache_stats).
                if tracer is not None:
                    tracer.count("journal_reset_fallbacks")
                return False
            add, remove = _net_delta(changes)
            total += len(add) + len(remove)
            if total > self.incremental_threshold:
                return False
            if add:
                added[name] = add
            if remove:
                removed[name] = remove

        if total:
            from repro.obs.trace import traced_span

            derived = {p: entries[p].relation for p in members}
            maintainer = MaterializedDatabase.for_views(
                kb, derived, set(members), guard=guard
            )
            try:
                with traced_span(
                    tracer,
                    "cache.repair",
                    rows_added=sum(len(v) for v in added.values()),
                    rows_removed=sum(len(v) for v in removed.values()),
                ):
                    maintainer.apply_edb_delta(added, removed)
            except BaseException:
                # Never serve a half-refreshed view: the touched entries are
                # gone before the failure propagates.
                for predicate in members:
                    if self._views.pop(predicate, None) is not None:
                        self.stats.invalidations += 1
                self._update_gauges()
                raise
        self._clock += 1
        for predicate in members:
            entry = entries[predicate]
            entry.edb_versions = dict(profiles[predicate][0])
            entry.tick = self._clock
        return True

    def _recompute(
        self,
        members: list[str],
        profiles: dict[str, tuple[dict[str, int], frozenset[str]]],
        executor: str,
        guard: ResourceGuard | None,
        tracer=None,
    ) -> None:
        """Full semi-naive materialisation of the closure; stores on success."""
        for predicate in members:
            if predicate in self._views and not self._is_fresh(
                predicate, profiles[predicate]
            ):
                del self._views[predicate]
                self.stats.invalidations += 1
        engine = SemiNaiveEngine(
            self._kb, executor=executor, guard=guard, tracer=tracer
        )
        # On a ResourceExhausted trip ``_inflight`` deliberately stays set:
        # the degrade path reads sound partial fixpoints from it via
        # :meth:`partial_relation`.  The next probe overwrites it.
        self._inflight = engine
        derived = engine.evaluate(members)
        self._inflight = None
        self._clock += 1
        rules_version = self._kb.rules_version
        for predicate in members:
            edb_versions, undefined = profiles[predicate]
            self._views[predicate] = _ViewEntry(
                relation=derived[predicate],
                rules_version=rules_version,
                edb_versions=dict(edb_versions),
                undefined=undefined,
                tick=self._clock,
            )

    def _evict(self) -> None:
        """Enforce the rows budget, least-recently-used views first."""
        total = sum(len(entry.relation) for entry in self._views.values())
        while total > self.max_rows and self._views:
            victim = min(self._views, key=lambda p: self._views[p].tick)
            total -= len(self._views[victim].relation)
            del self._views[victim]
            self.stats.evictions += 1

    def _update_gauges(self) -> None:
        self.stats.rows_pinned = sum(
            len(entry.relation) for entry in self._views.values()
        )
        self.stats.bytes_pinned = sum(
            _approx_bytes(entry.relation) for entry in self._views.values()
        )

    def __repr__(self) -> str:
        return (
            f"ViewCache({len(self._views)} views, {self.stats.rows_pinned} rows, "
            f"{len(self._statements)} memoized statements)"
        )
