"""Pass 2 — recursion discipline (strong linearity and typedness).

The paper's standing assumption (section 2.1): every recursive predicate is
defined by recursive rules that are *strongly linear* (the head predicate
occurs exactly once in the body) and *typed* with respect to their head
(across all occurrences of the head predicate in the rule, every variable
sits at one fixed argument position).  Outside that fragment the describe
transformation is unsound, so the knowledge base enforces it at rule entry;
this pass reports the same conditions as per-rule diagnostics instead of a
boolean, plus the two tolerated shapes as informational findings.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register
from repro.logic.typing import (
    is_permutation_rule,
    is_strongly_linear,
    is_typed_with_respect_to,
)

NOT_STRONGLY_LINEAR = "KB201"
NOT_TYPED = "KB202"
MUTUAL_RECURSION = "KB203"
PERMUTATION_RULE = "KB204"


@register(
    "recursion",
    "recursion discipline (strong linearity, typedness)",
    (NOT_STRONGLY_LINEAR, NOT_TYPED, MUTUAL_RECURSION, PERMUTATION_RULE),
)
def run(model) -> Iterator[Diagnostic]:
    graph = model.graph
    for rule in model.rules:
        if not graph.is_recursive_rule(rule):
            continue
        head = rule.head.predicate

        def emit(
            code: str, severity: Severity, message: str, hint: str
        ) -> Diagnostic:
            return Diagnostic(
                code=code,
                severity=severity,
                message=message,
                predicate=head,
                rule=str(rule),
                span=rule.span,
                hint=hint,
                pass_name="recursion",
            )

        if is_permutation_rule(rule):
            yield emit(
                PERMUTATION_RULE,
                Severity.INFO,
                f"permutation rule for {head}: handled by bounded application "
                "(section 5.3), not the transformation",
                "no action needed; the engines bound its applications by the "
                "permutation order",
            )
            continue
        if head not in rule.body_predicates():
            yield emit(
                MUTUAL_RECURSION,
                Severity.INFO,
                f"rule is recursive through mutual dependency, without a "
                f"direct {head} body atom",
                "the data engines evaluate this; only the describe "
                "transformation is restricted to direct recursion",
            )
            continue
        if not is_strongly_linear(rule):
            yield emit(
                NOT_STRONGLY_LINEAR,
                Severity.ERROR,
                f"recursive rule is not strongly linear: {head} occurs "
                f"{rule.body_predicates().count(head)} times in the body",
                "rewrite so the head predicate occurs exactly once in the "
                "body (split the rule or introduce an auxiliary predicate)",
            )
        if not is_typed_with_respect_to(rule, head):
            yield emit(
                NOT_TYPED,
                Severity.ERROR,
                f"recursive rule is not typed with respect to {head}: some "
                "variable occupies two different argument positions",
                "keep every variable at a single argument position across "
                f"all occurrences of {head} in the rule",
            )
