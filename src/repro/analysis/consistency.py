"""Pass 6 — arity and name consistency.

The catalog enforces most of this at load time by raising; the analyzer
reports the same conditions (and a few the catalog cannot see) as located
diagnostics over the *whole* program:

* **KB601** — a predicate *defined* (facts, rule heads, declarations) at
  two different arities: the knowledge base will reject the program;
* **KB602** — a predicate with both stored facts and defining rules: IDB
  predicates may not shadow EDB relations (and vice versa);
* **KB603** — a body/constraint reference whose arity disagrees with the
  predicate's defined arity: the atom can never match and silently
  evaluates to the empty relation;
* **KB604** — a predicate whose name collides with a reserved keyword or a
  built-in comparison of the surface language (only constructible through
  the Python API; such a knowledge base cannot round-trip through text).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register
from repro.lang.tokens import KEYWORDS

CONFLICTING_DEFINITIONS = "KB601"
IDB_SHADOWS_EDB = "KB602"
ARITY_MISMATCH = "KB603"
RESERVED_NAME = "KB604"


@register(
    "consistency",
    "arity and name consistency",
    (CONFLICTING_DEFINITIONS, IDB_SHADOWS_EDB, ARITY_MISMATCH, RESERVED_NAME),
)
def run(model) -> Iterator[Diagnostic]:
    defined_arity: dict[str, int] = {}
    conflicted: set[str] = set()

    # First the definitions, in occurrence order: the first arity wins and
    # later disagreeing definitions are the findings.
    for occurrence in model.occurrences:
        if not occurrence.defines:
            continue
        name = occurrence.predicate
        first = defined_arity.setdefault(name, occurrence.arity)
        if occurrence.arity != first and name not in conflicted:
            conflicted.add(name)
            rule = occurrence.rule
            yield Diagnostic(
                code=CONFLICTING_DEFINITIONS,
                severity=Severity.ERROR,
                message=(
                    f"predicate {name} is defined at arity "
                    f"{occurrence.arity} but was first defined at arity "
                    f"{first}"
                ),
                predicate=name,
                rule=str(rule) if rule is not None else None,
                span=rule.span if rule is not None else None,
                hint="a predicate has one arity; rename one of the two",
                pass_name="consistency",
            )

    # Facts and rules for the same predicate.
    fact_predicates = {fact.head.predicate for fact in model.facts} | {
        name for name, count in model.fact_counts.items() if count
    }
    rule_heads = {rule.head.predicate for rule in model.rules}
    for name in sorted(fact_predicates & rule_heads):
        first = model.rules_for(name)[0]
        yield Diagnostic(
            code=IDB_SHADOWS_EDB,
            severity=Severity.ERROR,
            message=(
                f"predicate {name} has both stored facts and defining "
                "rules; IDB predicates may not shadow EDB relations"
            ),
            predicate=name,
            rule=str(first),
            span=first.span,
            hint=(
                "keep stored facts and derived definitions under different "
                "predicate names (e.g. a base relation plus a view)"
            ),
            pass_name="consistency",
        )

    # References whose arity disagrees with the defined arity.
    reported: set[tuple[str, int, str | None]] = set()
    for occurrence in model.occurrences:
        if occurrence.defines:
            continue
        name = occurrence.predicate
        if name in conflicted or name not in defined_arity:
            continue
        if occurrence.arity == defined_arity[name]:
            continue
        rule = occurrence.rule
        key = (name, occurrence.arity, str(rule) if rule is not None else None)
        if key in reported:
            continue
        reported.add(key)
        yield Diagnostic(
            code=ARITY_MISMATCH,
            severity=Severity.WARNING,
            message=(
                f"{name} is used at arity {occurrence.arity} but defined "
                f"at arity {defined_arity[name]}; the atom can never match"
            ),
            predicate=name,
            rule=str(rule) if rule is not None else None,
            span=rule.span if rule is not None else None,
            hint="adjust the argument list to the predicate's arity",
            pass_name="consistency",
        )

    # Reserved / built-in names (API-built knowledge bases only).
    for name in sorted(model.defined_predicates):
        if name in KEYWORDS or model.is_builtin(name):
            rules = model.rules_for(name)
            first = rules[0] if rules else None
            yield Diagnostic(
                code=RESERVED_NAME,
                severity=Severity.WARNING,
                message=(
                    f"predicate name {name!r} collides with a reserved word "
                    "of the surface language"
                ),
                predicate=name,
                rule=str(first) if first is not None else None,
                span=first.span if first is not None else None,
                hint=(
                    "rename the predicate; programs using this name cannot "
                    "be written or re-loaded as text"
                ),
                pass_name="consistency",
            )
