"""Static analysis of knowledge bases: ``dbk lint``'s engine.

A multi-pass analyzer over a rule base (parsed program or loaded
:class:`~repro.catalog.database.KnowledgeBase`) emitting structured,
source-located :class:`Diagnostic` records:

======  ========  ===========================================================
pass    codes     what it checks
======  ========  ===========================================================
(parse) KB001     the program parses at all
safety  KB101-103 range restriction (only ``=`` chains bind)
recursion KB201-204 strong linearity + typedness of recursive rules
stratification KB301 no recursion through negation
comparisons KB401-402 body/constraint comparisons are satisfiable
deadcode KB501-505 undefined, unreachable, unreferenced, duplicate, subsumed
consistency KB601-604 arities agree; no EDB/IDB/keyword shadowing
======  ========  ===========================================================

See ``docs/LINT.md`` for the full catalogue with minimal triggering
programs.  The package ``__init__`` stays import-light on purpose:
:mod:`repro.engine.safety` wraps the safety pass and must be importable
without the full evaluation stack, so the analyzer driver loads lazily.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.lang.source import SourceSpan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.analyzer import analyze, analyze_source  # noqa: F401

__all__ = [
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "analyze",
    "analyze_source",
]


def __getattr__(name: str) -> object:
    if name in ("analyze", "analyze_source", "PARSE_ERROR"):
        from repro.analysis import analyzer

        return getattr(analyzer, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
