"""Pass 1 — safety (range restriction).

A rule is *safe* when every head variable, and every variable of an order
comparison or negated atom, is bound by a positive (non-comparison) body
atom or pinned through a chain of ``=`` conjuncts anchored at a constant.

Only ``=`` binds.  ``!=`` excludes a single point of a dense domain and
order comparisons (``<``, ``<=``, ``>``, ``>=``) bound a variable's range
without naming finitely many values, so none of them can ground a variable:
``p(X) <- (X != 3)`` and ``p(X) <- (X > 3)`` both denote infinite
relations and are rejected (codes KB101/KB102).

This module is the analyzer's home for the check; :mod:`repro.engine.safety`
keeps the historical raise-based API as a thin wrapper over it.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule
from repro.logic.terms import Variable, is_constant, is_variable

#: Codes emitted by this pass.
UNBOUND_HEAD = "KB101"
UNBOUND_COMPARISON = "KB102"
UNBOUND_NEGATED = "KB103"

_HINT = (
    "bind the variable with a positive body atom, or pin it through a "
    "chain of '=' conjuncts anchored at a constant ('!=' and order "
    "comparisons never bind)"
)


def bound_variables(body: Sequence[Atom]) -> frozenset[Variable]:
    """Variables bound by the body: positive atoms plus ``=`` propagation.

    Comparison atoms other than ``=`` contribute nothing: a disequality or
    an order comparison constrains a variable without grounding it.
    """
    bound: set[Variable] = set()
    for atom in body:
        if not atom.is_comparison():
            bound.update(atom.variables())
    # Propagate through equality conjuncts to a fixpoint.
    equalities = [a for a in body if a.predicate == "="]
    changed = True
    while changed:
        changed = False
        for atom in equalities:
            left, right = atom.args
            left_bound = is_constant(left) or left in bound
            right_bound = is_constant(right) or right in bound
            if left_bound and is_variable(right) and right not in bound:
                bound.add(right)  # type: ignore[arg-type]
                changed = True
            if right_bound and is_variable(left) and left not in bound:
                bound.add(left)  # type: ignore[arg-type]
                changed = True
    return frozenset(bound)


def rule_safety_diagnostics(rule: Rule) -> list[Diagnostic]:
    """Every safety violation of one rule, as structured diagnostics."""
    diagnostics: list[Diagnostic] = []

    def emit(code: str, message: str) -> None:
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                predicate=rule.head.predicate,
                rule=str(rule),
                span=rule.span,
                hint=_HINT,
                pass_name="safety",
            )
        )

    bound = bound_variables(rule.body)
    for variable in sorted(rule.head_variables(), key=lambda v: v.name):
        if variable not in bound:
            emit(UNBOUND_HEAD, f"head variable {variable} is not bound by the body")
    for atom in rule.body:
        if atom.is_comparison() and atom.predicate != "=":
            for variable in atom.variables():
                if variable not in bound:
                    emit(
                        UNBOUND_COMPARISON,
                        f"comparison {atom} uses unbound variable {variable}",
                    )
    for atom in rule.negated:
        for variable in atom.variables():
            if variable not in bound:
                emit(
                    UNBOUND_NEGATED,
                    f"negated atom {atom} uses unbound variable {variable}",
                )
    return diagnostics


@register(
    "safety",
    "safety / range restriction",
    (UNBOUND_HEAD, UNBOUND_COMPARISON, UNBOUND_NEGATED),
)
def run(model) -> Iterator[Diagnostic]:
    """Check every rule of the model (facts are ground, hence safe)."""
    for rule in _all_clauses(model):
        yield from rule_safety_diagnostics(rule)


def _all_clauses(model) -> Iterable[Rule]:
    yield from model.rules
    # Non-ground "facts" cannot arise (is_fact() requires groundness), so
    # only real rules need checking; a bodiless non-ground clause such as
    # ``p(X).`` parses as a rule with an empty body and lands above.
