"""The analyzer's view of a rule base: one model, two constructors.

The passes need a uniform, *lenient* picture of a program — lenient because
the analyzer must describe broken programs that :class:`KnowledgeBase`
would refuse to load (conflicting arities, facts and rules sharing a
predicate).  :class:`ProgramModel` provides that picture and can be built
from either a parsed :class:`~repro.lang.ast.Program` (spans available,
nothing validated) or a loaded :class:`~repro.catalog.database.KnowledgeBase`
(already validated; spans only where the rules carry them).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import TYPE_CHECKING

from repro.catalog.dependencies import DependencyGraph
from repro.lang.ast import ConstraintStatement, Program, RuleStatement
from repro.logic.builtins import is_builtin_predicate
from repro.logic.clauses import IntegrityConstraint, Rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.database import KnowledgeBase


@dataclass(frozen=True)
class Occurrence:
    """One use of a predicate: where, at what arity, in which role."""

    predicate: str
    arity: int
    role: str            #: "fact" | "head" | "body" | "negated" | "constraint" | "schema"
    rule: Rule | IntegrityConstraint | None = None

    @property
    def defines(self) -> bool:
        """Whether this occurrence *defines* the predicate (vs referencing it)."""
        return self.role in ("fact", "head", "schema")


@dataclass
class ProgramModel:
    """Everything the analysis passes ask about a rule base."""

    rules: list[Rule] = field(default_factory=list)
    facts: list[Rule] = field(default_factory=list)
    constraints: list[IntegrityConstraint] = field(default_factory=list)
    #: EDB predicates (declared, or inferred from stored facts) -> arity.
    edb: dict[str, int] = field(default_factory=dict)
    #: Declared IDB predicates -> arity (knowledge bases only; rule heads
    #: are collected separately so conflicting definitions stay visible).
    declared_idb: dict[str, int] = field(default_factory=dict)
    #: Stored-fact counts per EDB predicate.
    fact_counts: dict[str, int] = field(default_factory=dict)
    #: The knowledge base this model was built from (``from_kb`` only) —
    #: lets the abstract-interpretation analyses seed column domains and
    #: cardinalities from the stored relations instead of program text.
    source_kb: "KnowledgeBase | None" = field(default=None, repr=False, compare=False)

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_program(cls, program: Program) -> "ProgramModel":
        """Model a parsed program; query statements are ignored."""
        model = cls()
        for statement in program.statements:
            if isinstance(statement, RuleStatement):
                rule = statement.rule
                if rule.is_fact():
                    model.facts.append(rule)
                    predicate = rule.head.predicate
                    model.edb.setdefault(predicate, rule.head.arity)
                    model.fact_counts[predicate] = (
                        model.fact_counts.get(predicate, 0) + 1
                    )
                else:
                    model.rules.append(rule)
            elif isinstance(statement, ConstraintStatement):
                model.constraints.append(statement.constraint)
        return model

    @classmethod
    def from_kb(cls, kb: "KnowledgeBase") -> "ProgramModel":
        """Model a loaded knowledge base (facts kept as counts only)."""
        model = cls()
        model.source_kb = kb
        model.rules = kb.rules()
        model.constraints = kb.constraints()
        for predicate in kb.edb_predicates():
            model.edb[predicate] = kb.schema(predicate).arity
            model.fact_counts[predicate] = len(kb.relation(predicate))
        for predicate in kb.idb_predicates():
            model.declared_idb[predicate] = kb.schema(predicate).arity
        return model

    # -- derived structure -------------------------------------------------------

    @cached_property
    def graph(self) -> DependencyGraph:
        """Dependency graph over the (non-fact) rules."""
        return DependencyGraph(self.rules)

    @cached_property
    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by at least one rule (plus declared IDB)."""
        return frozenset(
            {rule.head.predicate for rule in self.rules} | set(self.declared_idb)
        )

    @cached_property
    def defined_predicates(self) -> frozenset[str]:
        """Predicates with any definition: facts, rules, or declarations."""
        return self.idb_predicates | frozenset(self.edb)

    @cached_property
    def referenced_predicates(self) -> frozenset[str]:
        """Predicates used in any rule body, negated atom, or constraint."""
        seen: set[str] = set()
        for rule in self.rules:
            for atom in (*rule.body, *rule.negated):
                if not atom.is_comparison():
                    seen.add(atom.predicate)
        for constraint in self.constraints:
            for atom in constraint.body:
                if not atom.is_comparison():
                    seen.add(atom.predicate)
        return frozenset(seen)

    @cached_property
    def occurrences(self) -> list[Occurrence]:
        """Every non-comparison predicate occurrence, definition-first."""
        result: list[Occurrence] = []
        for name, arity in sorted(self.edb.items()):
            result.append(Occurrence(name, arity, "schema"))
        for name, arity in sorted(self.declared_idb.items()):
            result.append(Occurrence(name, arity, "schema"))
        for fact in self.facts:
            result.append(
                Occurrence(fact.head.predicate, fact.head.arity, "fact", fact)
            )
        for rule in self.rules:
            result.append(
                Occurrence(rule.head.predicate, rule.head.arity, "head", rule)
            )
            for atom in rule.body:
                if not atom.is_comparison():
                    result.append(Occurrence(atom.predicate, atom.arity, "body", rule))
            for atom in rule.negated:
                result.append(Occurrence(atom.predicate, atom.arity, "negated", rule))
        for constraint in self.constraints:
            for atom in constraint.body:
                if not atom.is_comparison():
                    result.append(
                        Occurrence(atom.predicate, atom.arity, "constraint", constraint)
                    )
        return result

    @cached_property
    def supported_predicates(self) -> frozenset[str]:
        """Predicates that can (potentially) have a non-empty extension.

        The least fixpoint of: every EDB predicate is supported; an IDB
        predicate is supported when some defining rule's positive,
        non-comparison body atoms are all supported (negated atoms never
        *need* support — stratified negation holds over absent facts).
        A rule whose positive body is comparisons-only supports its head
        vacuously (such rules are unsafe and flagged elsewhere).
        """
        supported: set[str] = set(self.edb)
        rules = self.rules
        changed = True
        while changed:
            changed = False
            for rule in rules:
                head = rule.head.predicate
                if head in supported:
                    continue
                positives = [
                    a for a in rule.body if not a.is_comparison()
                ]
                if all(a.predicate in supported for a in positives):
                    supported.add(head)
                    changed = True
        return frozenset(supported)

    def is_builtin(self, predicate: str) -> bool:
        """Whether the predicate is a built-in comparison."""
        return is_builtin_predicate(predicate)

    def rules_for(self, predicate: str) -> list[Rule]:
        """The (non-fact) rules whose head is *predicate*, in order."""
        return [r for r in self.rules if r.head.predicate == predicate]
