"""Pass 7 — abstract interpretation (modes, types, cardinalities).

Findings derived from the fixpoint analyses in this package:

* **KB701** — an order comparison whose operands are provably
  type-incompatible (one side can only be numeric, the other only
  str/bool): every row reaching it would raise, so either the rule body is
  dead or the program crashes;
* **KB702** — a join that is provably empty: a shared variable meets two
  disjoint column domains, or a constant argument can never match its
  column — the rule can never derive a fact;
* **KB703** — a recursive rule whose body contains a non-ground atom with
  no variable connection to any recursive atom: each iteration multiplies
  the delta by that atom's full extension (cartesian fan-out), the classic
  unbounded-growth shape;
* **KB704** — a rule whose constant head arguments are incompatible with
  *every* reference to its predicate: no call pattern can ever select the
  facts it derives.

All four are warnings — the programs load and evaluate, but part of the
rule base is provably inert or dangerous.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.absint.typeinfer import RuleTypes, infer_types, rule_types
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register
from repro.logic.clauses import IntegrityConstraint, Rule
from repro.logic.terms import Variable, is_constant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.model import ProgramModel

INCOMPARABLE_ORDER = "KB701"
EMPTY_JOIN = "KB702"
UNBOUNDED_RECURSION = "KB703"
UNREACHABLE_BY_CALL = "KB704"


@register(
    "absint",
    "abstract interpretation (type conflicts, empty joins, recursion growth)",
    (INCOMPARABLE_ORDER, EMPTY_JOIN, UNBOUNDED_RECURSION, UNREACHABLE_BY_CALL),
)
def run(model: "ProgramModel") -> Iterator[Diagnostic]:
    state = infer_types(model)
    evaluated: dict[int, RuleTypes] = {
        id(rule): rule_types(rule, state) for rule in model.rules
    }
    yield from _type_findings(model, evaluated)
    yield from _unbounded_recursion(model)
    yield from _unreachable_by_call(model, state, evaluated)


def _type_findings(
    model: "ProgramModel", evaluated: dict[int, RuleTypes]
) -> Iterator[Diagnostic]:
    for rule in model.rules:
        seen: set[tuple[str, str, str]] = set()
        for event in evaluated[id(rule)].events:
            key = (event.kind, str(event.atom), event.subject)
            if key in seen:
                continue
            seen.add(key)
            if event.kind == "order-incomparable":
                yield Diagnostic(
                    code=INCOMPARABLE_ORDER,
                    severity=Severity.WARNING,
                    message=(
                        f"order comparison {event.atom} can never succeed: "
                        f"left side is {event.left}, right side is {event.right}"
                    ),
                    predicate=rule.head.predicate,
                    rule=str(rule),
                    span=rule.span,
                    hint=(
                        "numeric and non-numeric values are never comparable; "
                        "fix the joined columns or drop the comparison"
                    ),
                    pass_name="absint",
                )
            elif event.kind == "empty-join":
                yield Diagnostic(
                    code=EMPTY_JOIN,
                    severity=Severity.WARNING,
                    message=(
                        f"join on {event.subject} in {event.atom} is provably "
                        f"empty: {event.left} never intersects {event.right}"
                    ),
                    predicate=rule.head.predicate,
                    rule=str(rule),
                    span=rule.span,
                    hint=(
                        "the joined columns hold disjoint values, so the rule "
                        "can never derive a fact; check the join positions"
                    ),
                    pass_name="absint",
                )
            else:  # empty-const
                yield Diagnostic(
                    code=EMPTY_JOIN,
                    severity=Severity.WARNING,
                    message=(
                        f"constant {event.subject} in {event.atom} can never "
                        f"match its column (column holds {event.left})"
                    ),
                    predicate=rule.head.predicate,
                    rule=str(rule),
                    span=rule.span,
                    hint=(
                        "no stored or derivable value equals the constant; "
                        "likely a typo in the constant or the wrong column"
                    ),
                    pass_name="absint",
                )


class _UnionFind:
    def __init__(self) -> None:
        self._parent: dict[Variable, Variable] = {}

    def find(self, item: Variable) -> Variable:
        parent = self._parent.setdefault(item, item)
        if parent is item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, items: list[Variable]) -> None:
        if not items:
            return
        first = self.find(items[0])
        for item in items[1:]:
            self._parent[self.find(item)] = first

    def connected(self, left: Variable, right: Variable) -> bool:
        return self.find(left) is self.find(right)


def _unbounded_recursion(model: "ProgramModel") -> Iterator[Diagnostic]:
    graph = model.graph
    for rule in model.rules:
        if not graph.is_recursive_rule(rule):
            continue
        recursion_class = graph.recursion_class(rule.head.predicate)
        uf = _UnionFind()
        for atom in rule.body:
            uf.union(list(atom.variable_set()))
        recursive_vars: set[Variable] = set()
        for atom in rule.body:
            if atom.is_comparison():
                continue
            if atom.predicate == rule.head.predicate or atom.predicate in recursion_class:
                recursive_vars.update(atom.variable_set())
        if not recursive_vars:
            continue
        for atom in rule.body:
            if atom.is_comparison():
                continue
            if atom.predicate == rule.head.predicate or atom.predicate in recursion_class:
                continue
            variables = atom.variable_set()
            if not variables:
                continue
            if any(
                uf.connected(var, rec) for var in variables for rec in recursive_vars
            ):
                continue
            yield Diagnostic(
                code=UNBOUNDED_RECURSION,
                severity=Severity.WARNING,
                message=(
                    f"recursive rule multiplies every iteration by {atom}: "
                    "the atom shares no variables with the recursive part"
                ),
                predicate=rule.head.predicate,
                rule=str(rule),
                span=rule.span,
                hint=(
                    "each fixpoint round re-crosses the recursion with the "
                    "atom's full extension; join it to the recursive atom or "
                    "hoist it out of the recursion"
                ),
                pass_name="absint",
            )
            break  # one finding per rule is enough


def _reference_atoms(
    model: "ProgramModel", predicate: str
) -> Iterator[tuple[object, Rule | IntegrityConstraint]]:
    for rule in model.rules:
        for atom in (*rule.body, *rule.negated):
            if not atom.is_comparison() and atom.predicate == predicate:
                yield atom, rule
    for constraint in model.constraints:
        for atom in constraint.body:
            if not atom.is_comparison() and atom.predicate == predicate:
                yield atom, constraint


def _unreachable_by_call(
    model: "ProgramModel",
    state: dict,
    evaluated: dict[int, RuleTypes],
) -> Iterator[Diagnostic]:
    from repro.analysis.absint.lattice import TOP, from_constant

    referenced = model.referenced_predicates
    for rule in model.rules:
        constant_positions = [
            (index, arg)
            for index, arg in enumerate(rule.head.args)
            if is_constant(arg)
        ]
        if not constant_positions:
            continue
        predicate = rule.head.predicate
        if predicate not in referenced:
            continue  # entry points are KB503's business, not ours
        references = list(_reference_atoms(model, predicate))
        if not references:
            continue
        reachable = False
        for atom, container in references:
            compatible = True
            for index, constant in constant_positions:
                if index >= atom.arity:
                    continue  # arity drift: KB602's business
                arg = atom.args[index]
                if is_constant(arg):
                    if arg != constant:
                        compatible = False
                        break
                else:
                    if isinstance(container, Rule):
                        domain = evaluated[id(container)].variables.get(arg, TOP)
                    else:
                        domain = TOP  # constraints: no abstract evaluation
                    if domain.meet(from_constant(constant)).is_bottom:
                        compatible = False
                        break
            if compatible:
                reachable = True
                break
        if reachable:
            continue
        rendered = ", ".join(
            f"argument {index + 1} = {constant}"
            for index, constant in constant_positions
        )
        yield Diagnostic(
            code=UNREACHABLE_BY_CALL,
            severity=Severity.WARNING,
            message=(
                f"rule for {predicate} is unreachable: no reference to "
                f"{predicate} can match {rendered}"
            ),
            predicate=predicate,
            rule=str(rule),
            span=rule.span,
            hint=(
                "every call site uses a different constant (or a variable "
                "that can never take this value); the derived facts are "
                "never selected"
            ),
            pass_name="absint",
        )
