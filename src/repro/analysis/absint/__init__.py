"""Abstract interpretation over rule bases: modes, types, cardinalities.

One fixpoint driver (:mod:`.fixpoint`) runs three abstract domains:

* :mod:`.modes` — binding-mode (adornment) propagation under the same
  left-to-right SIPS the magic-sets rewrite uses;
* :mod:`.typeinfer` — per-column type/domain inference over the
  :mod:`.lattice` of kinds ⊔ interval/enum facets, seeded from EDB columns;
* :mod:`.cardinality` — row/distinct estimates with cap widening, plus
  recursion-structure classification.

:mod:`.summary` bundles the results into the cached, engine-facing
:class:`~repro.analysis.absint.summary.AnalysisSummary`; :mod:`.lintpass`
turns the same results into the ``KB7xx`` diagnostics.  Importing this
package registers the lint pass.
"""

from repro.analysis.absint import lintpass as lintpass  # registers the pass
from repro.analysis.absint.cardinality import (
    CardEstimate,
    infer_cardinalities,
    recursion_profile,
)
from repro.analysis.absint.lattice import BOTTOM, TOP, ColumnDomain
from repro.analysis.absint.modes import ModeTable, adornment_of, infer_modes
from repro.analysis.absint.summary import (
    AnalysisSummary,
    fingerprint_of,
    planning_enabled,
    planning_override,
    summarize,
    summary_for,
)
from repro.analysis.absint.typeinfer import infer_types

__all__ = [
    "AnalysisSummary",
    "BOTTOM",
    "CardEstimate",
    "ColumnDomain",
    "ModeTable",
    "TOP",
    "adornment_of",
    "fingerprint_of",
    "infer_cardinalities",
    "infer_modes",
    "infer_types",
    "planning_enabled",
    "planning_override",
    "recursion_profile",
    "summarize",
    "summary_for",
]
