"""Binding-mode (adornment) analysis: which call patterns reach each rule.

An *adornment* is the classic bound/free string over a predicate's
arguments (``path`` called as ``path(n0, Y)`` has adornment ``bf``).  The
analysis propagates adornments top-down through the program under the
same left-to-right sideways-information-passing strategy (SIPS) the
magic-sets rewrite uses: inside a rule body, an atom's arguments are bound
when they are constants, head arguments bound by the call, or variables
bound by any earlier body atom or comparison.

Two consumers share this module:

* the abstract-interpretation summary records the inferred adornment set
  per predicate (query entry points are conservatively seeded all-free,
  since ad-hoc queries can call them any way);
* :mod:`repro.engine.magic` pulls each rule's per-body-atom adornments
  from a memoized :class:`ModeTable` instead of recomputing the SIPS walk
  for every query — the table lives on the cached analysis summary, so
  repeat queries reuse the schedules.

:func:`adornment_of` is the canonical definition (the magic rewrite
imports it from here); :meth:`ModeTable.schedule_rule` replicates the
rewrite's bound-set bookkeeping exactly, which the rewrite's output
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

from repro.analysis.absint.fixpoint import Equation, solve
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule
from repro.logic.terms import Variable, is_constant, is_variable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.model import ProgramModel

__all__ = ["ModeTable", "RuleSchedule", "ScheduleEntry", "adornment_of", "infer_modes"]


def adornment_of(atom: Atom, bound: set[Variable] | frozenset[Variable]) -> str:
    """The adornment string: ``b`` per bound argument, ``f`` per free one."""
    letters = []
    for arg in atom.args:
        if is_constant(arg) or arg in bound:
            letters.append("b")
        else:
            letters.append("f")
    return "".join(letters)


@dataclass(frozen=True)
class ScheduleEntry:
    """One non-comparison body atom's place in a rule's SIPS schedule."""

    index: int                          #: position in ``rule.body``
    atom: Atom
    adornment: str
    bound_before: frozenset[Variable]   #: variables bound when the atom runs


@dataclass(frozen=True)
class RuleSchedule:
    """The SIPS walk of one rule under one head adornment."""

    rule: Rule
    head_adornment: str
    entries: tuple[ScheduleEntry, ...]

    def entry_at(self, index: int) -> ScheduleEntry | None:
        for entry in self.entries:
            if entry.index == index:
                return entry
        return None


class ModeTable:
    """Memoized SIPS schedules for a fixed rule set.

    ``schedule(predicate, adornment)`` returns one :class:`RuleSchedule`
    per defining rule, computed once per ``(predicate, adornment)`` pair
    for the table's lifetime — the analysis summary caches the table per
    ``(rules_version, EDB versions)``, so the magic rewrite's per-query
    work shrinks to dictionary lookups for every already-seen call pattern.
    """

    def __init__(self, rules: Iterable[Rule]) -> None:
        self._rules_by_pred: dict[str, list[Rule]] = {}
        for rule in rules:
            self._rules_by_pred.setdefault(rule.head.predicate, []).append(rule)
        self._schedules: dict[tuple[str, str], tuple[RuleSchedule, ...]] = {}

    def predicates(self) -> list[str]:
        return sorted(self._rules_by_pred)

    def rules_for(self, predicate: str) -> list[Rule]:
        return list(self._rules_by_pred.get(predicate, ()))

    def schedule(self, predicate: str, adornment: str) -> tuple[RuleSchedule, ...]:
        key = (predicate, adornment)
        cached = self._schedules.get(key)
        if cached is None:
            cached = tuple(
                self.schedule_rule(rule, adornment)
                for rule in self._rules_by_pred.get(predicate, ())
            )
            self._schedules[key] = cached
        return cached

    @staticmethod
    def schedule_rule(rule: Rule, adornment: str) -> RuleSchedule:
        """The SIPS walk of one rule called with *adornment*.

        Mirrors the magic rewrite's bookkeeping exactly: head arguments
        marked ``b`` start bound; comparisons bind their variables as they
        are passed; every body atom binds its variables after it runs.
        """
        bound: set[Variable] = {
            arg
            for arg, letter in zip(rule.head.args, adornment)
            if letter == "b" and is_variable(arg)
        }
        entries: list[ScheduleEntry] = []
        for index, atom in enumerate(rule.body):
            if atom.is_comparison():
                bound.update(atom.variables())
                continue
            entries.append(
                ScheduleEntry(index, atom, adornment_of(atom, bound), frozenset(bound))
            )
            bound.update(atom.variables())
        return RuleSchedule(rule, adornment, tuple(entries))


def _constraint_seeds(constraints) -> dict[str, set[str]]:
    """Adornments from integrity-constraint bodies (left-to-right SIPS)."""
    seeds: dict[str, set[str]] = {}
    for constraint in constraints:
        bound: set[Variable] = set()
        for atom in constraint.body:
            if atom.is_comparison():
                bound.update(atom.variables())
                continue
            seeds.setdefault(atom.predicate, set()).add(adornment_of(atom, bound))
            bound.update(atom.variables())
    return seeds


def infer_modes(
    model: "ProgramModel", table: ModeTable | None = None
) -> dict[str, frozenset[str]]:
    """Infer the adornment set every predicate can be called with.

    Every rule-defined predicate seeds all-free — any ad-hoc query may
    call it — and bound call patterns flow down through rule bodies under
    the SIPS walk.  EDB predicates appear in the result too: their
    adornments are the access patterns rule bodies subject them to
    (useful to the planner and ``explain``).
    """
    table = table if table is not None else ModeTable(model.rules)
    arity_of: dict[str, int] = dict(model.edb)
    arity_of.update(model.declared_idb)
    for rule in model.rules:
        arity_of.setdefault(rule.head.predicate, rule.head.arity)

    initial: dict[str, frozenset[str]] = {name: frozenset() for name in arity_of}
    for predicate in model.idb_predicates:
        arity = arity_of.get(predicate, 0)
        initial[predicate] = frozenset({"f" * arity})
    for predicate, adornments in _constraint_seeds(model.constraints).items():
        if predicate in initial:
            initial[predicate] = initial[predicate] | frozenset(adornments)

    equations: list[Equation] = []
    for predicate in sorted({rule.head.predicate for rule in model.rules}):
        rules = table.rules_for(predicate)
        for rule_index, rule in enumerate(rules):
            for index, atom in enumerate(rule.body):
                if atom.is_comparison() or atom.predicate not in initial:
                    continue

                def transfer(
                    state: Mapping[str, object],
                    predicate: str = predicate,
                    rule_index: int = rule_index,
                    index: int = index,
                ) -> frozenset[str]:
                    result: set[str] = set()
                    adornments: frozenset[str] = state[predicate]  # type: ignore[assignment]
                    for adornment in adornments:
                        schedule = table.schedule(predicate, adornment)[rule_index]
                        entry = schedule.entry_at(index)
                        if entry is not None:
                            result.add(entry.adornment)
                    return frozenset(result)

                equations.append(Equation(atom.predicate, (predicate,), transfer))

    def join(old: object, new: object) -> frozenset[str]:
        return old | new  # type: ignore[operator]

    return solve(equations, initial, join)  # type: ignore[return-value]


def atoms_adornments(
    atoms: Sequence[Atom], initially_bound: frozenset[Variable] = frozenset()
) -> dict[str, set[str]]:
    """Adornments a query conjunction induces, under the same SIPS walk."""
    seeds: dict[str, set[str]] = {}
    bound: set[Variable] = set(initially_bound)
    for atom in atoms:
        if atom.is_comparison():
            bound.update(atom.variables())
            continue
        seeds.setdefault(atom.predicate, set()).add(adornment_of(atom, bound))
        bound.update(atom.variables())
    return seeds
