"""The engine-facing product of the abstract interpretation.

:func:`summarize` runs all three domains — binding modes, type/domain
inference, cardinality estimation — over one :class:`ProgramModel` and
bundles the results into an :class:`AnalysisSummary`.  :func:`summary_for`
is the cached entry point the engines use: summaries are keyed on the
knowledge base's ``(rules_version, EDB version vector)`` fingerprint, so a
repeat query against an unchanged knowledge base pays a dictionary lookup,
and any rule edit or fact mutation invalidates exactly the stale summary.
The cache holds the summary per knowledge base via a weak reference — a
dropped knowledge base takes its summary with it.

Whether the *planner* consumes summaries is controlled like the columnar
backend flag: the ``REPRO_PLAN_ANALYSIS`` environment variable is parsed
once (default: enabled), with :func:`configure_planning` /
:func:`planning_override` as the programmatic/test overrides.  Turning the
flag off reverts join ordering and kernel specialization to the purely
syntactic behaviour; lint and ``explain`` run the analysis regardless.
"""

from __future__ import annotations

import os
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.analysis.absint.cardinality import (
    CardEstimate,
    infer_cardinalities,
    recursion_profile,
)
from repro.analysis.absint.lattice import TOP, ColumnDomain
from repro.analysis.absint.modes import ModeTable, infer_modes
from repro.analysis.absint.typeinfer import infer_types
from repro.analysis.model import ProgramModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.database import KnowledgeBase

__all__ = [
    "AnalysisSummary",
    "cache_info",
    "configure_planning",
    "fingerprint_of",
    "planning_enabled",
    "planning_override",
    "reset_cache",
    "summarize",
    "summary_for",
]

#: Cache fingerprint: ``(rules_version, ((predicate, version), ...))``.
Fingerprint = tuple[int, tuple[tuple[str, int], ...]]


@dataclass(frozen=True)
class AnalysisSummary:
    """Everything the planner, magic rewrite, and kernels ask for."""

    fingerprint: Fingerprint | None
    modes: Mapping[str, frozenset[str]]
    mode_table: ModeTable
    types: Mapping[str, tuple[ColumnDomain, ...]]
    cards: Mapping[str, CardEstimate]
    recursion: Mapping[str, str]
    model: ProgramModel = field(repr=False, compare=False)
    #: Scratch memo for engine-side artifacts derived from this summary
    #: (e.g. per-rule variable domains computed at kernel-compile time).
    #: Lives and dies with the summary, so cache invalidation is free.
    memo: dict = field(default_factory=dict, repr=False, compare=False)

    # -- lookups -----------------------------------------------------------------

    def column_domains(self, predicate: str) -> tuple[ColumnDomain, ...] | None:
        return self.types.get(predicate)

    def column_domain(self, predicate: str, column: int) -> ColumnDomain:
        domains = self.types.get(predicate)
        if domains is None or column >= len(domains):
            return TOP
        return domains[column]

    def estimated_rows(self, predicate: str) -> float | None:
        estimate = self.cards.get(predicate)
        return None if estimate is None else estimate.rows

    def distinct_estimates(self, predicate: str) -> tuple[float, ...] | None:
        estimate = self.cards.get(predicate)
        return None if estimate is None else estimate.distinct

    def compact_key(self, predicate: str, column: int) -> int | None:
        """The column's exact distinct-value bound, when the enum facet
        survived — the signal for dense-remap join keys."""
        domain = self.column_domain(predicate, column)
        bound = domain.distinct_bound()
        return bound if bound is not None and bound > 0 else None

    def adornments(self, predicate: str) -> frozenset[str]:
        return self.modes.get(predicate, frozenset())


def fingerprint_of(kb: "KnowledgeBase") -> Fingerprint:
    """The summary cache key: rules version + EDB relation versions."""
    return (
        kb.rules_version,
        tuple(
            sorted(
                (predicate, kb.relation(predicate).version)
                for predicate in kb.edb_predicates()
            )
        ),
    )


def summarize(
    model: ProgramModel, fingerprint: Fingerprint | None = None
) -> AnalysisSummary:
    """Run all three abstract domains over one model (uncached)."""
    if fingerprint is None and model.source_kb is not None:
        fingerprint = fingerprint_of(model.source_kb)
    table = ModeTable(model.rules)
    modes = infer_modes(model, table)
    types = infer_types(model)
    cards = infer_cardinalities(model, types)
    return AnalysisSummary(
        fingerprint=fingerprint,
        modes=modes,
        mode_table=table,
        types=types,
        cards=cards,
        recursion=recursion_profile(model),
        model=model,
    )


# -- per-knowledge-base cache ---------------------------------------------------

_cache: "weakref.WeakKeyDictionary[KnowledgeBase, AnalysisSummary]" = (
    weakref.WeakKeyDictionary()
)
_hits = 0
_misses = 0


def summary_for(kb: "KnowledgeBase") -> AnalysisSummary:
    """The (cached) analysis summary for a knowledge base.

    A cached summary is reused only while its fingerprint still matches —
    any rule change bumps ``rules_version``, any fact change bumps the
    owning relation's ``version``, and either forces a fresh analysis.
    """
    global _hits, _misses
    fingerprint = fingerprint_of(kb)
    cached = _cache.get(kb)
    if cached is not None and cached.fingerprint == fingerprint:
        _hits += 1
        return cached
    _misses += 1
    summary = summarize(ProgramModel.from_kb(kb), fingerprint)
    _cache[kb] = summary
    return summary


def cache_info() -> dict[str, int]:
    """Hit/miss counters (the cached-hit benchmark reads these)."""
    return {"hits": _hits, "misses": _misses, "entries": len(_cache)}


def reset_cache() -> None:
    global _hits, _misses
    _cache.clear()
    _hits = 0
    _misses = 0


# -- planner feature flag -------------------------------------------------------

_planning: bool | None = None


def _planning_from_env() -> bool:
    flag = os.environ.get("REPRO_PLAN_ANALYSIS", "").lower()
    return flag not in ("off", "0", "false", "no")


def planning_enabled() -> bool:
    """Whether the planner consumes analysis summaries (default: yes)."""
    global _planning
    if _planning is None:
        _planning = _planning_from_env()
    return _planning


def configure_planning(enabled: bool | None) -> None:
    """Override the flag programmatically; ``None`` re-reads the env."""
    global _planning
    _planning = enabled


@contextmanager
def planning_override(enabled: bool | None):
    """Context manager: :func:`configure_planning` scoped to a block."""
    global _planning
    saved = _planning
    try:
        configure_planning(enabled)
        yield
    finally:
        _planning = saved
