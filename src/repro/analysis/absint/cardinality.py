"""Cardinality/fan-out estimation: row and distinct-count bounds per predicate.

The abstract value is a :class:`CardEstimate` — an estimated row count plus
a per-column distinct-count estimate.  EDB predicates are seeded from live
relation statistics (``len`` and ``distinct_count`` per column, the same
numbers :func:`repro.engine.joins.relation_cost_estimator` reads); IDB
estimates grow through rule transfers under the shared fixpoint driver.

A rule transfer walks the body left to right, the way the planners join:
each positive atom multiplies rows by its *fan-out* (size divided by the
distinct count of every bound column — the standard independence
assumption), comparisons apply fixed selectivities, and the head projects
through the surviving variables' distinct estimates.  This chain is of
unbounded height for recursive programs (estimates can keep climbing), so
the driver's widening hook jumps a predicate to its *cap* — the product of
its column universes, taken from the type analysis's enum facets when
present and from the EDB constant universe otherwise.  Recursive predicates
are additionally classified (``linear`` / ``nonlinear`` / ``mutual``) from
the dependency graph; the lint pass uses the classification together with
widened estimates to call out unbounded-growth recursion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.analysis.absint.fixpoint import Equation, solve
from repro.analysis.absint.lattice import ColumnDomain
from repro.logic.clauses import Rule
from repro.logic.terms import Variable, is_constant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.model import ProgramModel

__all__ = [
    "CardEstimate",
    "infer_cardinalities",
    "recursion_profile",
]

#: Selectivity of ``=`` / order / ``!=`` comparisons (classic defaults).
EQ_SEL = 0.1
ORD_SEL = 0.33
NEQ_SEL = 0.9

#: Hard ceiling on any estimate — keeps the float arithmetic sane.
CAP_MAX = 1e18

#: Floor used for per-atom fan-out, mirroring ``relation_cost_estimator``.
_GROWTH_FLOOR = 0.001


@dataclass(frozen=True)
class CardEstimate:
    """Estimated rows and per-column distinct counts for one predicate."""

    rows: float
    distinct: tuple[float, ...]

    @property
    def is_empty(self) -> bool:
        return self.rows <= 0.0

    def join(self, other: "CardEstimate") -> "CardEstimate":
        """Upper bound across rules: elementwise max."""
        width = min(len(self.distinct), len(other.distinct))
        return CardEstimate(
            max(self.rows, other.rows),
            tuple(
                max(self.distinct[i], other.distinct[i]) for i in range(width)
            ),
        )

    def describe(self) -> str:
        rows = int(self.rows) if self.rows < CAP_MAX else "huge"
        return f"~{rows} rows"


def _empty(arity: int) -> CardEstimate:
    return CardEstimate(0.0, (0.0,) * arity)


def _edb_stats(model: "ProgramModel") -> dict[str, CardEstimate]:
    """Seed estimates from stored relations (or program facts)."""
    stats: dict[str, CardEstimate] = {}
    kb = model.source_kb
    if kb is not None:
        for predicate, arity in model.edb.items():
            relation = kb.relation(predicate)
            rows = float(len(relation))
            stats[predicate] = CardEstimate(
                rows,
                tuple(float(relation.distinct_count(c)) for c in range(arity)),
            )
        return stats

    collected: dict[str, list[set]] = {}
    for fact in model.facts:
        head = fact.head
        columns = collected.setdefault(
            head.predicate, [set() for _ in range(head.arity)]
        )
        for index, arg in enumerate(head.args):
            if index < len(columns):
                columns[index].add(arg)
    for predicate, arity in model.edb.items():
        rows = float(model.fact_counts.get(predicate, 0))
        columns = collected.get(predicate, [])
        stats[predicate] = CardEstimate(
            rows,
            tuple(
                float(len(columns[c])) if c < len(columns) else rows
                for c in range(arity)
            ),
        )
    return stats


def _universe(stats: Mapping[str, CardEstimate]) -> float:
    """An upper bound on the number of distinct EDB constants.

    Every constant lives in at least one EDB column, so the sum of the
    per-column distinct counts bounds the constant universe from above.
    """
    total = sum(sum(est.distinct) for est in stats.values())
    return max(1.0, min(total, CAP_MAX))


def _clamp(value: float, low: float, high: float) -> float:
    return max(low, min(value, high))


def rule_estimate(
    rule: Rule, state: Mapping[str, CardEstimate], universe: float
) -> CardEstimate:
    """Abstractly evaluate one rule body's row/distinct estimate."""
    rows = 1.0
    bound: set[Variable] = set()
    var_distinct: dict[Variable, float] = {}
    for atom in rule.body:
        if atom.is_comparison():
            op = atom.predicate
            if op == "=":
                rows *= EQ_SEL
                left, right = atom.args
                if is_constant(right) and not is_constant(left):
                    var_distinct[left] = 1.0  # type: ignore[index]
                elif is_constant(left) and not is_constant(right):
                    var_distinct[right] = 1.0  # type: ignore[index]
            elif op == "!=":
                rows *= NEQ_SEL
            else:
                rows *= ORD_SEL
            bound.update(atom.variables())
            continue
        est = state.get(atom.predicate)
        if est is None or est.is_empty:
            return _empty(rule.head.arity)
        growth = min(est.rows, CAP_MAX)
        for column, arg in enumerate(atom.args):
            distinct = est.distinct[column] if column < len(est.distinct) else 1.0
            if is_constant(arg) or arg in bound:
                growth /= max(distinct, 1.0)
        rows = min(rows * max(growth, _GROWTH_FLOOR), CAP_MAX)
        for column, arg in enumerate(atom.args):
            if is_constant(arg):
                continue
            distinct = est.distinct[column] if column < len(est.distinct) else 1.0
            distinct = _clamp(distinct, 1.0, max(est.rows, 1.0))
            seen = var_distinct.get(arg)
            var_distinct[arg] = distinct if seen is None else min(seen, distinct)
        bound.update(atom.variables())

    head = rule.head
    raw = tuple(
        1.0 if is_constant(arg) else var_distinct.get(arg, universe)
        for arg in head.args
    )
    cap = 1.0
    for distinct in raw:
        cap = min(cap * max(distinct, 1.0), CAP_MAX)
    out_rows = min(rows, cap)
    return CardEstimate(out_rows, tuple(min(d, max(out_rows, 1.0)) for d in raw))


def _column_caps(
    predicate: str,
    arity: int,
    universe: float,
    types: Mapping[str, tuple[ColumnDomain, ...]] | None,
) -> tuple[float, ...]:
    caps = []
    for column in range(arity):
        cap = universe
        if types is not None:
            domains = types.get(predicate)
            if domains is not None and column < len(domains):
                bound = domains[column].distinct_bound()
                if bound is not None and bound > 0:
                    cap = float(bound)
        caps.append(cap)
    return tuple(caps)


def infer_cardinalities(
    model: "ProgramModel",
    types: Mapping[str, tuple[ColumnDomain, ...]] | None = None,
) -> dict[str, CardEstimate]:
    """Least-fixpoint (widened) cardinality estimates for every predicate."""
    stats = _edb_stats(model)
    universe = _universe(stats)

    initial: dict[str, CardEstimate] = dict(stats)
    arity_of: dict[str, int] = dict(model.edb)
    for predicate, arity in model.declared_idb.items():
        arity_of.setdefault(predicate, arity)
        initial.setdefault(predicate, _empty(arity))
    for rule in model.rules:
        arity_of.setdefault(rule.head.predicate, rule.head.arity)
        initial.setdefault(rule.head.predicate, _empty(rule.head.arity))

    equations: list[Equation] = []
    for rule in model.rules:
        deps = tuple(
            sorted(
                {
                    atom.predicate
                    for atom in rule.body
                    if not atom.is_comparison() and atom.predicate in initial
                }
            )
        )

        def transfer(
            state: Mapping[str, object], rule: Rule = rule
        ) -> CardEstimate:
            return rule_estimate(rule, state, universe)  # type: ignore[arg-type]

        equations.append(Equation(rule.head.predicate, deps, transfer))

    def join(old: object, new: object) -> CardEstimate:
        return old.join(new)  # type: ignore[union-attr]

    def widen(target: str, value: object) -> CardEstimate:
        caps = _column_caps(target, arity_of.get(target, 0), universe, types)
        cap_rows = 1.0
        for cap in caps:
            cap_rows = min(cap_rows * max(cap, 1.0), CAP_MAX)
        return CardEstimate(cap_rows, caps)

    return solve(equations, initial, join, widen)  # type: ignore[return-value]


def recursion_profile(model: "ProgramModel") -> dict[str, str]:
    """Classify every recursive predicate: ``linear``/``nonlinear``/``mutual``.

    ``mutual`` — the predicate's recursion class has more than one member;
    ``nonlinear`` — some defining rule uses two or more atoms from the
    class (quadratic-style self-joins); ``linear`` otherwise.
    """
    graph = model.graph
    profile: dict[str, str] = {}
    for predicate in sorted(graph.recursive_predicates()):
        cls = graph.recursion_class(predicate)
        if len(cls) > 1:
            profile[predicate] = "mutual"
            continue
        nonlinear = False
        for rule in model.rules_for(predicate):
            in_class = sum(
                1
                for atom in rule.body
                if not atom.is_comparison() and atom.predicate in cls
            )
            if in_class >= 2:
                nonlinear = True
                break
        profile[predicate] = "nonlinear" if nonlinear else "linear"
    return profile
