"""Type/domain inference: per-column abstract values for every predicate.

EDB predicates are seeded from their stored columns — distinct symbol ids
from the relation's interned :class:`~repro.catalog.columnar.ColumnBlock`
mirror, externalized once per distinct value (when the analysis runs over
a parsed source program, the program's facts seed the columns instead).
Rule transfer is abstract evaluation of one body: each variable's domain
is the meet of every column it joins against, constants meet the columns
they match, and comparisons refine operands (``=`` intersects, ``!=``
drops enum members, order operators narrow kinds and numeric intervals).
The head columns then follow from the head arguments, and the per-rule
results join across a predicate's rules under the shared fixpoint driver.

A meet of two non-empty column domains hitting bottom is recorded as a
:class:`TypeEvent` — that is the evidence the ``KB702`` (provably empty
join) and ``KB701`` (provably failing order comparison) diagnostics are
built from; the engine-facing summary only keeps the final domains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.analysis.absint.fixpoint import Equation, solve
from repro.analysis.absint.lattice import (
    BOTTOM,
    TOP,
    ColumnDomain,
    from_constant,
    from_values,
    order_incomparable,
)
from repro.logic.atoms import Atom
from repro.logic.clauses import Rule
from repro.logic.terms import Variable, is_constant

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.model import ProgramModel

__all__ = [
    "RuleTypes",
    "TypeEvent",
    "infer_types",
    "rule_types",
    "seed_types",
]

#: A predicate's abstract extension: one domain per column.
PredicateDomains = tuple[ColumnDomain, ...]


@dataclass(frozen=True)
class TypeEvent:
    """Evidence collected while abstractly evaluating one rule body.

    ``kind`` is ``empty-join`` (a shared variable's domains are disjoint),
    ``empty-const`` (a constant argument can never match its column), or
    ``order-incomparable`` (an order comparison's operands are provably
    type-incompatible, so reaching it raises).
    """

    kind: str
    atom: Atom
    subject: str          #: the variable or constant at fault, rendered
    left: str             #: domain rendering before/left of the conflict
    right: str            #: domain rendering after/right of the conflict


@dataclass
class RuleTypes:
    """The abstract evaluation of one rule body."""

    variables: dict[Variable, ColumnDomain] = field(default_factory=dict)
    #: Domains after the positive atoms alone, before comparison guards
    #: refine them.  Consumers that use domains to *justify eliding a
    #: guard's own runtime check* (the kernel's comparison specialization)
    #: must read these — the guard-narrowed ``variables`` would be
    #: circular evidence.
    atom_variables: dict[Variable, ColumnDomain] = field(default_factory=dict)
    #: Whether the body can (abstractly) produce any row at all.
    contributes: bool = True
    events: list[TypeEvent] = field(default_factory=list)

    def domain_of(self, term: object) -> ColumnDomain:
        if is_constant(term):
            return from_constant(term)  # type: ignore[arg-type]
        return self.variables.get(term, TOP)  # type: ignore[arg-type]


def seed_types(model: "ProgramModel") -> dict[str, PredicateDomains]:
    """EDB column domains from stored relations or program facts.

    An empty (or merely declared) EDB relation seeds ⊤ per column: its
    future contents are unknown, and claiming emptiness would turn every
    join against it into a false "provably empty" diagnostic.
    """
    seeds: dict[str, PredicateDomains] = {}
    kb = getattr(model, "source_kb", None)
    if kb is not None:
        from repro.catalog.symbols import SYMBOLS

        for predicate in sorted(model.edb):
            relation = kb.relation(predicate)
            arity = relation.arity
            if len(relation) == 0:
                seeds[predicate] = (TOP,) * arity
                continue
            block = relation.column_block()
            columns = []
            for index in range(arity):
                distinct = set(block.columns[index])
                columns.append(
                    from_values(SYMBOLS.extern(sid).value for sid in distinct)
                )
            seeds[predicate] = tuple(columns)
        return seeds

    collected: dict[str, list[set | None]] = {}
    for fact in model.facts:
        head = fact.head
        columns = collected.setdefault(
            head.predicate, [set() for _ in range(head.arity)]
        )
        for index, arg in enumerate(head.args):
            if index >= len(columns):
                break
            if columns[index] is None:
                continue
            if is_constant(arg):
                columns[index].add(arg.value)  # type: ignore[union-attr]
            else:  # non-ground "fact" (unsafe, flagged elsewhere): column unknown
                columns[index] = None
    for predicate, arity in model.edb.items():
        columns = collected.get(predicate)
        if columns is None:
            seeds[predicate] = (TOP,) * arity
        else:
            seeds[predicate] = tuple(
                TOP if values is None or not values else from_values(values)
                for values in columns
            )
    return seeds


def _meet_into(
    result: RuleTypes, variable: Variable, domain: ColumnDomain, atom: Atom
) -> None:
    """Meet a column domain into a variable, recording disjoint joins."""
    old = result.variables.get(variable)
    if old is None:
        result.variables[variable] = domain
        if domain.is_bottom:
            result.contributes = False
        return
    new = old.meet(domain)
    result.variables[variable] = new
    if new.is_bottom:
        result.contributes = False
        if not old.is_bottom and not domain.is_bottom:
            result.events.append(
                TypeEvent(
                    "empty-join", atom, str(variable),
                    old.describe(), domain.describe(),
                )
            )


def rule_types(
    rule: Rule, state: Mapping[str, PredicateDomains]
) -> RuleTypes:
    """Abstractly evaluate one rule body against the current state."""
    result = RuleTypes()

    # Positive atoms constrain variables and check constant arguments.
    for atom in rule.body:
        if atom.is_comparison():
            continue
        domains = state.get(atom.predicate)
        if domains is None:
            # Undefined predicate: empty extension (KB501's territory).
            result.contributes = False
            continue
        for column, arg in enumerate(atom.args):
            domain = domains[column] if column < len(domains) else TOP
            if is_constant(arg):
                if domain.meet(from_constant(arg)).is_bottom:
                    result.contributes = False
                    if not domain.is_bottom:
                        result.events.append(
                            TypeEvent(
                                "empty-const", atom, str(arg),
                                domain.describe(), from_constant(arg).describe(),
                            )
                        )
            else:
                _meet_into(result, arg, domain, atom)

    result.atom_variables = dict(result.variables)

    # Comparisons refine (and order comparisons are checked for provable
    # incompatibility — the evidence behind KB701).
    for atom in rule.body:
        if not atom.is_comparison():
            continue
        op = atom.predicate
        left, right = atom.args
        left_domain = result.domain_of(left)
        right_domain = result.domain_of(right)
        if op == "=":
            met = left_domain.meet(right_domain)
            if not is_constant(left):
                result.variables[left] = met  # type: ignore[index]
            if not is_constant(right):
                result.variables[right] = met  # type: ignore[index]
            if met.is_bottom:
                result.contributes = False
        elif op == "!=":
            if is_constant(right) and not is_constant(left):
                result.variables[left] = left_domain.without_value(right)  # type: ignore[index]
            elif is_constant(left) and not is_constant(right):
                result.variables[right] = right_domain.without_value(left)  # type: ignore[index]
        else:
            if order_incomparable(left_domain, right_domain):
                result.events.append(
                    TypeEvent(
                        "order-incomparable", atom, op,
                        left_domain.describe(), right_domain.describe(),
                    )
                )
                result.contributes = False
            if not is_constant(left):
                result.variables[left] = left_domain.restrict_order(op, right_domain)  # type: ignore[index]
            if not is_constant(right):
                flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}[op]
                result.variables[right] = right_domain.restrict_order(  # type: ignore[index]
                    flipped, left_domain
                )
    for domain in result.variables.values():
        if domain.is_bottom:
            result.contributes = False
    return result


def _head_domains(rule: Rule, result: RuleTypes) -> PredicateDomains:
    if not result.contributes:
        return tuple(BOTTOM for _ in rule.head.args)
    return tuple(result.domain_of(arg) for arg in rule.head.args)


def _join_domains(old: PredicateDomains, new: PredicateDomains) -> PredicateDomains:
    if len(old) != len(new):  # conflicting arity definitions (KB602): lenient
        width = min(len(old), len(new))
        old, new = old[:width], new[:width]
    return tuple(a.join(b) for a, b in zip(old, new))


def infer_types(model: "ProgramModel") -> dict[str, PredicateDomains]:
    """Least-fixpoint column domains for every predicate in the model."""
    initial: dict[str, PredicateDomains] = dict(seed_types(model))
    for predicate, arity in model.declared_idb.items():
        initial.setdefault(predicate, (BOTTOM,) * arity)
    for rule in model.rules:
        initial.setdefault(rule.head.predicate, (BOTTOM,) * rule.head.arity)

    equations: list[Equation] = []
    for rule in model.rules:
        deps = tuple(
            sorted(
                {
                    atom.predicate
                    for atom in rule.body
                    if not atom.is_comparison() and atom.predicate in initial
                }
            )
        )

        def transfer(
            state: Mapping[str, object], rule: Rule = rule
        ) -> PredicateDomains:
            return _head_domains(rule, rule_types(rule, state))  # type: ignore[arg-type]

        equations.append(Equation(rule.head.predicate, deps, transfer))

    def join(old: object, new: object) -> PredicateDomains:
        return _join_domains(old, new)  # type: ignore[arg-type]

    return solve(equations, initial, join)  # type: ignore[return-value]
