"""The per-column abstract value lattice of the type/domain analysis.

A :class:`ColumnDomain` over-approximates the set of constants a predicate
argument (or a rule variable) can take:

* ``kinds`` — which primitive kinds are possible (``int``/``float``/
  ``str``/``bool``; the empty set is bottom, all four is kind-top);
* an *interval facet* ``[low, high]`` constraining the numeric members
  (``None`` = unbounded on that side; only meaningful while a numeric kind
  is possible);
* an *enum facet* ``values`` — the exact finite set of possible constant
  values, kept while it stays at or under :data:`ENUM_CAP` members and
  dropped (widened to ``None`` = "any value of these kinds") beyond that.

All three facets are kept mutually consistent by :func:`make`: when the
enum facet is present, kinds and interval are derived from it, so equality
of domains is plain structural equality.  ``join`` is the lattice union
(used across the rules defining one predicate), ``meet`` the intersection
(used along one rule body — shared variables, constant arguments,
comparison refinements).  Everything here is pure data over plain python
values; symbol ids never appear.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.logic.terms import Constant

__all__ = [
    "ENUM_CAP",
    "BOTTOM",
    "TOP",
    "ColumnDomain",
    "from_constant",
    "from_values",
    "kind_of",
    "make",
    "order_incomparable",
]

#: All primitive kinds a constant can have (see ``repro.logic.terms``).
KINDS = frozenset({"int", "float", "str", "bool"})
_NUMERIC = frozenset({"int", "float"})
_NONNUMERIC = frozenset({"str", "bool"})

#: Enum-facet width: beyond this many distinct values the exact value set
#: is dropped (widened), keeping only kinds and the numeric interval.
ENUM_CAP = 24

#: How many enum members :meth:`ColumnDomain.describe` spells out.
_DESCRIBE_CAP = 6


def kind_of(value: object) -> str:
    """The primitive kind of a constant's payload (bool before int!)."""
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    return "str"


@dataclass(frozen=True)
class ColumnDomain:
    """One abstract column value: kinds + interval facet + enum facet."""

    kinds: frozenset[str]
    low: float | int | None = None
    high: float | int | None = None
    values: frozenset | None = None

    # -- predicates ---------------------------------------------------------------

    @property
    def is_bottom(self) -> bool:
        return not self.kinds

    @property
    def is_top(self) -> bool:
        return self.kinds == KINDS and self.low is None and self.high is None \
            and self.values is None

    @property
    def has_numeric(self) -> bool:
        return bool(self.kinds & _NUMERIC)

    @property
    def has_nonnumeric(self) -> bool:
        return bool(self.kinds & _NONNUMERIC)

    @property
    def numeric_only(self) -> bool:
        """Provably numeric (non-empty and every kind is int/float)."""
        return bool(self.kinds) and self.kinds <= _NUMERIC

    @property
    def nonnumeric_only(self) -> bool:
        """Provably non-numeric (non-empty and every kind is str/bool)."""
        return bool(self.kinds) and self.kinds <= _NONNUMERIC

    def single_kind(self) -> str | None:
        """The one possible kind, when there is exactly one."""
        if len(self.kinds) == 1:
            return next(iter(self.kinds))
        return None

    def contains(self, constant: Constant) -> bool:
        """Whether the domain admits *constant* (soundness check)."""
        value = constant.value
        kind = kind_of(value)
        if kind not in self.kinds:
            return False
        if self.values is not None:
            return value in self.values
        if kind in _NUMERIC:
            if self.low is not None and value < self.low:
                return False
            if self.high is not None and value > self.high:
                return False
        return True

    def distinct_bound(self) -> int | None:
        """An upper bound on the number of distinct values, when known."""
        if self.is_bottom:
            return 0
        if self.values is not None:
            return len(self.values)
        return None

    # -- lattice operations -------------------------------------------------------

    def join(self, other: "ColumnDomain") -> "ColumnDomain":
        """Least upper bound: anything either domain admits."""
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.values is not None and other.values is not None:
            return from_values(self.values | other.values)
        kinds = self.kinds | other.kinds
        a_num, b_num = self.has_numeric, other.has_numeric
        if a_num and b_num:
            low = None if self.low is None or other.low is None \
                else min(self.low, other.low)
            high = None if self.high is None or other.high is None \
                else max(self.high, other.high)
        elif a_num:
            low, high = self.low, self.high
        elif b_num:
            low, high = other.low, other.high
        else:
            low = high = None
        return make(kinds, low, high, None)

    def meet(self, other: "ColumnDomain") -> "ColumnDomain":
        """Greatest lower bound: only what both domains admit."""
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if self.values is not None:
            return from_values(v for v in self.values if other.contains(Constant(v)))
        if other.values is not None:
            return from_values(v for v in other.values if self.contains(Constant(v)))
        kinds = self.kinds & other.kinds
        lows = [x for x in (self.low, other.low) if x is not None]
        highs = [x for x in (self.high, other.high) if x is not None]
        return make(kinds, max(lows) if lows else None, min(highs) if highs else None, None)

    def without_value(self, constant: Constant) -> "ColumnDomain":
        """Refinement for ``!=``: drop one value from the enum facet."""
        if self.values is not None and constant.value in self.values:
            return from_values(self.values - {constant.value})
        return self

    def restrict_order(self, op: str, other: "ColumnDomain") -> "ColumnDomain":
        """Refinement for an order comparison ``self op other``.

        Rows surviving the comparison have this operand comparable with the
        other one, so kinds narrow to those with a counterpart on the other
        side; when the other side is provably numeric with known bounds,
        the interval facet tightens too (bounds are kept inclusive — an
        over-approximation, which is all soundness needs).
        """
        allowed: set[str] = set()
        if other.has_numeric:
            allowed |= _NUMERIC
        if other.has_nonnumeric:
            allowed |= _NONNUMERIC
        restricted = self.meet(make(frozenset(allowed), None, None, None))
        if not other.numeric_only:
            return restricted
        if op in ("<", "<=") and other.high is not None:
            restricted = restricted.meet(make(KINDS, None, other.high, None))
        elif op in (">", ">=") and other.low is not None:
            restricted = restricted.meet(make(KINDS, other.low, None, None))
        return restricted

    # -- rendering ----------------------------------------------------------------

    def describe(self) -> str:
        """A short deterministic rendering for diagnostics and explain."""
        if self.is_bottom:
            return "none"
        if self.is_top:
            return "any"
        kinds = "|".join(sorted(self.kinds))
        if self.values is not None:
            shown = sorted(self.values, key=lambda v: (kind_of(v), str(v)))
            if len(shown) > _DESCRIBE_CAP:
                inner = ", ".join(repr(v) for v in shown[:_DESCRIBE_CAP]) + ", ..."
            else:
                inner = ", ".join(repr(v) for v in shown)
            return f"{kinds}{{{inner}}}"
        if self.has_numeric and (self.low is not None or self.high is not None):
            low = "-inf" if self.low is None else repr(self.low)
            high = "+inf" if self.high is None else repr(self.high)
            return f"{kinds}[{low}..{high}]"
        return kinds

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


def make(
    kinds: frozenset[str],
    low: float | int | None = None,
    high: float | int | None = None,
    values: frozenset | None = None,
) -> ColumnDomain:
    """Normalize facets into a canonical :class:`ColumnDomain`."""
    if values is not None:
        return from_values(values)
    kinds = frozenset(kinds) & KINDS
    if not kinds:
        return BOTTOM
    if not (kinds & _NUMERIC):
        low = high = None
    elif low is not None and high is not None and low > high:
        # Empty numeric interval: the numeric kinds are impossible.
        kinds = kinds - _NUMERIC
        low = high = None
        if not kinds:
            return BOTTOM
    return ColumnDomain(kinds, low, high, None)


def from_values(values) -> ColumnDomain:
    """The exact domain of a finite value set (enum facet, cap-widened)."""
    values = frozenset(values)
    if not values:
        return BOTTOM
    kinds = frozenset(kind_of(v) for v in values)
    numerics = [v for v in values if kind_of(v) in _NUMERIC]
    low = min(numerics) if numerics else None
    high = max(numerics) if numerics else None
    if len(values) > ENUM_CAP:
        return ColumnDomain(kinds, low, high, None)
    return ColumnDomain(kinds, low, high, values)


def from_constant(constant: Constant) -> ColumnDomain:
    """The singleton domain of one constant."""
    return from_values((constant.value,))


def order_incomparable(left: ColumnDomain, right: ColumnDomain) -> bool:
    """Whether an order comparison of the operands *provably* errors.

    True only when both domains are non-empty and one is provably numeric
    while the other is provably non-numeric — exactly the condition under
    which :func:`repro.logic.builtins.comparable` rejects every value pair.
    """
    if left.is_bottom or right.is_bottom:
        return False
    return (left.numeric_only and right.nonnumeric_only) or (
        left.nonnumeric_only and right.numeric_only
    )


#: The empty domain (no value possible).
BOTTOM = ColumnDomain(frozenset())

#: The unconstrained domain (any constant).
TOP = ColumnDomain(KINDS)
