"""The one fixpoint driver behind every abstract domain.

All three analyses — binding modes, type/domain inference, cardinality
estimation — are least-fixpoint computations over a monotone equation
system: each :class:`Equation` recomputes one target's abstract value from
the current state, and the solver joins the result into the target,
re-queueing every equation that depends on it.  The domains differ only in
their value type, ``join``, and (for cardinality, whose chains of floats
can climb indefinitely) the *widening* applied after a target has been
updated :data:`MAX_UPDATES` times.

The worklist is deterministic (FIFO over equation indexes, seeded in
declaration order), so analysis results — and the diagnostics derived from
them — are stable across runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Mapping

__all__ = ["Equation", "MAX_UPDATES", "solve"]

#: Per-target update budget before the widening hook engages.
MAX_UPDATES = 32


@dataclass(frozen=True)
class Equation:
    """One monotone equation: ``target ⊒ transfer(state)``.

    ``deps`` lists the state keys the transfer reads; the solver re-queues
    the equation whenever one of them changes.
    """

    target: str
    deps: tuple[str, ...]
    transfer: Callable[[Mapping[str, object]], object]


def solve(
    equations: list[Equation],
    initial: Mapping[str, object],
    join: Callable[[object, object], object],
    widen: Callable[[str, object], object] | None = None,
    max_updates: int = MAX_UPDATES,
) -> dict[str, object]:
    """Solve the equation system to its least fixpoint.

    ``initial`` seeds the state (every target and dependency key should be
    present).  ``join`` combines an equation's result into the target's
    current value; ``widen(target, value)`` jumps a target straight to a
    stable over-approximation once it has been updated *max_updates* times
    (required for domains of unbounded height, a no-op for finite ones).
    """
    state: dict[str, object] = dict(initial)
    dependents: dict[str, list[int]] = {}
    for index, equation in enumerate(equations):
        for dep in equation.deps:
            dependents.setdefault(dep, []).append(index)

    worklist: deque[int] = deque(range(len(equations)))
    queued: set[int] = set(worklist)
    updates: dict[str, int] = {}
    rounds = 0
    limit = max(1000, 100 * len(equations))
    while worklist:
        rounds += 1
        if rounds > limit:  # pragma: no cover - defensive: domains are bounded
            raise RuntimeError(
                f"abstract fixpoint did not converge after {rounds} rounds"
            )
        index = worklist.popleft()
        queued.discard(index)
        equation = equations[index]
        target = equation.target
        old = state[target]
        new = join(old, equation.transfer(state))
        if new == old:
            continue
        count = updates.get(target, 0) + 1
        updates[target] = count
        if widen is not None and count > max_updates:
            new = widen(target, new)
            if new == old:
                continue
        state[target] = new
        for dependent in dependents.get(target, ()):
            if dependent not in queued:
                queued.add(dependent)
                worklist.append(dependent)
    return state
