"""Pass 5 — dead knowledge.

Findings that mean part of the rule base can never matter:

* **KB501** — a body/constraint atom references a predicate with no facts,
  no rules and no declaration (often a typo: ``enrol`` for ``enroll``);
* **KB502** — an IDB predicate that can never derive a fact because no
  chain of rules connects it to any EDB predicate;
* **KB503** — a predicate defined but never referenced by any rule or
  constraint (informational: query entry points look exactly like this);
* **KB504** — a rule stated twice: verbatim, or as an alphabetic variant
  (the rules theta-subsume each other);
* **KB505** — a rule subsumed by a sibling rule with the same head (the
  redundancy the paper's section 6 worries about, via theta-subsumption
  with semantic comparison handling).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register

UNDEFINED_PREDICATE = "KB501"
UNREACHABLE_PREDICATE = "KB502"
UNREFERENCED_PREDICATE = "KB503"
DUPLICATE_RULE = "KB504"
SUBSUMED_RULE = "KB505"


@register(
    "deadcode",
    "dead knowledge (undefined, unreachable, duplicate, subsumed)",
    (
        UNDEFINED_PREDICATE,
        UNREACHABLE_PREDICATE,
        UNREFERENCED_PREDICATE,
        DUPLICATE_RULE,
        SUBSUMED_RULE,
    ),
)
def run(model) -> Iterator[Diagnostic]:
    yield from _undefined(model)
    yield from _unreachable(model)
    yield from _unreferenced(model)
    yield from _duplicates_and_subsumed(model)


def _undefined(model) -> Iterator[Diagnostic]:
    defined = model.defined_predicates
    seen: set[tuple[str, str | None]] = set()
    for occurrence in model.occurrences:
        if occurrence.defines or occurrence.rule is None:
            continue
        name = occurrence.predicate
        if name in defined or model.is_builtin(name):
            continue
        key = (name, str(occurrence.rule))
        if key in seen:
            continue
        seen.add(key)
        yield Diagnostic(
            code=UNDEFINED_PREDICATE,
            severity=Severity.WARNING,
            message=(
                f"predicate {name} is referenced but has no facts, rules "
                "or declaration"
            ),
            predicate=name,
            rule=str(occurrence.rule),
            span=occurrence.rule.span,
            hint="define the predicate or fix the name (likely a typo)",
            pass_name="deadcode",
        )


def _unreachable(model) -> Iterator[Diagnostic]:
    supported = model.supported_predicates
    for predicate in sorted(model.idb_predicates):
        if predicate in supported:
            continue
        rules = model.rules_for(predicate)
        first = rules[0] if rules else None
        yield Diagnostic(
            code=UNREACHABLE_PREDICATE,
            severity=Severity.WARNING,
            message=(
                f"IDB predicate {predicate} is unreachable from any EDB "
                "facts and can never derive a fact"
            ),
            predicate=predicate,
            rule=str(first) if first is not None else None,
            span=first.span if first is not None else None,
            hint=(
                "every defining rule depends on a predicate with no "
                "extension; supply facts or fix the rule bodies"
            ),
            pass_name="deadcode",
        )


def _unreferenced(model) -> Iterator[Diagnostic]:
    referenced = model.referenced_predicates
    for predicate in sorted(model.defined_predicates):
        if predicate in referenced:
            continue
        rules = model.rules_for(predicate)
        first = rules[0] if rules else None
        yield Diagnostic(
            code=UNREFERENCED_PREDICATE,
            severity=Severity.INFO,
            message=f"predicate {predicate} is defined but never referenced",
            predicate=predicate,
            rule=str(first) if first is not None else None,
            span=first.span if first is not None else None,
            hint=(
                "fine for query entry points; otherwise the definition is "
                "dead knowledge"
            ),
            pass_name="deadcode",
        )


def _duplicates_and_subsumed(model) -> Iterator[Diagnostic]:
    # Local import: core.redundancy pulls in the answer model (and through
    # it the engine package); loading it lazily keeps this module importable
    # from low-level contexts without the full evaluation stack.
    from repro.core.redundancy import subsumes

    def equivalent(one, other):
        # Equal as written, or alphabetic variants / logically equivalent
        # bodies: each theta-subsumes the other (negated parts agreeing).
        if one == other:
            return True
        return (
            set(one.negated) == set(other.negated)
            and subsumes(one, other)
            and subsumes(other, one)
        )

    for predicate in sorted(model.idb_predicates):
        rules = model.rules_for(predicate)
        for index, rule in enumerate(rules):
            for earlier in rules[:index]:
                if equivalent(earlier, rule):
                    yield Diagnostic(
                        code=DUPLICATE_RULE,
                        severity=Severity.WARNING,
                        message=f"rule duplicates an earlier rule for {predicate}",
                        predicate=predicate,
                        rule=str(rule),
                        span=rule.span,
                        hint="delete the repeated definition",
                        pass_name="deadcode",
                    )
                    break
            else:
                # Subsumption only among non-identical siblings whose
                # negated parts agree (subsumption with negation is not
                # antitone-safe; cf. repro.core.diagnostics).
                for other in rules:
                    if other is rule or set(other.negated) != set(rule.negated):
                        continue
                    if subsumes(other, rule) and not subsumes(rule, other):
                        yield Diagnostic(
                            code=SUBSUMED_RULE,
                            severity=Severity.WARNING,
                            message=(
                                f"rule is subsumed by a more general "
                                f"sibling: {other}"
                            ),
                            predicate=predicate,
                            rule=str(rule),
                            span=rule.span,
                            hint=(
                                "every answer this rule produces is already "
                                "produced by the subsuming rule; delete it"
                            ),
                            pass_name="deadcode",
                        )
                        break
