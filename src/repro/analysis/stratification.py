"""Pass 3 — stratification (no recursion through negation).

A rule set has a stratified model only when no predicate depends negatively
on its own recursion class.  The dependency analysis already computes the
violating negative edges; this pass locates the rules that realise each
edge and reports them with source spans.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register

UNSTRATIFIABLE = "KB301"


@register(
    "stratification",
    "stratification / negation cycles",
    (UNSTRATIFIABLE,),
)
def run(model) -> Iterator[Diagnostic]:
    violations = model.graph.negation_violations()
    if not violations:
        return
    for head, negated in violations:
        # Every rule that realises this negative edge gets its own finding.
        culprits = [
            rule
            for rule in model.rules
            if rule.head.predicate == head
            and any(atom.predicate == negated for atom in rule.negated)
        ]
        for rule in culprits or [None]:
            yield Diagnostic(
                code=UNSTRATIFIABLE,
                severity=Severity.ERROR,
                message=(
                    f"recursion through negation: {head} depends negatively "
                    f"on {negated} inside one recursion class"
                ),
                predicate=head,
                rule=str(rule) if rule is not None else None,
                span=rule.span if rule is not None else None,
                hint=(
                    "break the cycle so negation applies only to predicates "
                    "of strictly lower strata"
                ),
                pass_name="stratification",
            )
