"""The diagnostic catalogue: one entry per stable ``KBxxx`` code.

``dbk lint --explain KB401`` renders these entries on the terminal, so
each one carries what the full reference (``docs/LINT.md``) says in
miniature: the owning pass, the severity, a one-paragraph explanation,
and a minimal triggering program.  The catalogue is the single source of
truth the CLI reads; a registered pass code without an entry here is a
bug (a test asserts the two sets match).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CatalogEntry", "all_entries", "catalog_entry"]


@dataclass(frozen=True)
class CatalogEntry:
    """Everything ``--explain`` prints about one diagnostic code."""

    code: str
    title: str
    severity: str
    pass_name: str  # "(parsing)" for KB001, a registry pass name otherwise
    summary: str
    example: str = ""

    def format(self) -> str:
        lines = [
            f"{self.code} — {self.title} ({self.severity})",
            f"pass: {self.pass_name}",
            "",
            self.summary,
        ]
        if self.example:
            lines.append("")
            lines.append("example:")
            lines.extend(f"    {line}" for line in self.example.splitlines())
        return "\n".join(lines)


_ENTRIES: tuple[CatalogEntry, ...] = (
    CatalogEntry(
        "KB001",
        "syntax error",
        "error",
        "(parsing)",
        "The file does not parse; the lexer or parser failure is turned into "
        "a located diagnostic instead of an exception so CI always gets "
        "structured output.",
        "p(X <- q(X).",
    ),
    CatalogEntry(
        "KB101",
        "unbound head variable",
        "error",
        "safety",
        "Every head variable must be bound by a positive body atom or pinned "
        "through a chain of = conjuncts anchored at a constant.  Only = "
        "binds: != and the order comparisons never ground a variable.",
        "p(X, W) <- q(X).",
    ),
    CatalogEntry(
        "KB102",
        "unbound comparison variable",
        "error",
        "safety",
        "An order comparison over a variable nothing binds denotes an "
        "infinite relation.",
        "p(X) <- q(X) and (Y > 3).",
    ),
    CatalogEntry(
        "KB103",
        "unbound variable in a negated atom",
        "error",
        "safety",
        "Negation-as-failure needs the negated atom ground at evaluation "
        "time.",
        "p(X) <- q(X) and not r(X, Y).",
    ),
    CatalogEntry(
        "KB201",
        "recursive rule not strongly linear",
        "error",
        "recursion",
        "The paper's standing assumption: the head predicate of a recursive "
        "rule occurs exactly once in its body.  Rewrite with the linear "
        "closure form.",
        "path(X, Y) <- path(X, Z) and path(Z, Y).",
    ),
    CatalogEntry(
        "KB202",
        "recursive rule not typed w.r.t. its head",
        "error",
        "recursion",
        "Across all occurrences of the head predicate in the rule, every "
        "variable must keep a single argument position; otherwise the "
        "describe transformation is unsound.",
        "grows(X, Y) <- grows(Y, X) and edge(X, Y).",
    ),
    CatalogEntry(
        "KB203",
        "mutual recursion without a direct self-atom",
        "info",
        "recursion",
        "The data engines evaluate mutually recursive predicates; only the "
        "describe transformation is restricted to direct recursion.",
        "even(X) <- edge(X, Y) and odd(Y).\nodd(X)  <- edge(X, Y) and even(Y).",
    ),
    CatalogEntry(
        "KB204",
        "permutation rule",
        "info",
        "recursion",
        "A pure argument permutation such as link(X, Y) <- link(Y, X) is "
        "tolerated: the engines bound its applications by the permutation "
        "order instead of transforming it.",
        "link(X, Y) <- link(Y, X).",
    ),
    CatalogEntry(
        "KB301",
        "recursion through negation",
        "error",
        "stratification",
        "The program has no stratified model; well-founded semantics would "
        "be required, which the stratified engines do not provide.",
        "p(X) <- q(X) and not p(X).",
    ),
    CatalogEntry(
        "KB401",
        "unsatisfiable rule comparisons",
        "warning",
        "comparisons",
        "The conjunction of a rule's comparison atoms has no solution over "
        "a dense ordered domain; the rule loads but can never fire.",
        "p(X) <- q(X, Y) and (Y > 3) and (Y < 2).",
    ),
    CatalogEntry(
        "KB402",
        "unsatisfiable constraint comparisons",
        "warning",
        "comparisons",
        "The comparison atoms of an integrity constraint are jointly "
        "unsatisfiable, so the constraint can never trip.",
        "not (q(X, Y) and (Y > 3) and (Y <= 3)).",
    ),
    CatalogEntry(
        "KB501",
        "reference to an undefined predicate",
        "warning",
        "deadcode",
        "A body or constraint atom references a predicate with no facts, no "
        "rules and no declaration — usually a typo.",
        "enroll(ann, db).\nhonor(X) <- enrol(X, C).",
    ),
    CatalogEntry(
        "KB502",
        "unreachable IDB predicate",
        "warning",
        "deadcode",
        "No chain of rules connects the predicate to any EDB facts, so it "
        "can never derive anything (e.g. a recursion without a base case).",
        "p(X, Y) <- p(X, Z) and p(Z, Y).",
    ),
    CatalogEntry(
        "KB503",
        "defined but never referenced",
        "info",
        "deadcode",
        "Nothing references the predicate.  Query entry points look exactly "
        "like this, hence informational.",
        "e(a).\ntop(X) <- e(X).",
    ),
    CatalogEntry(
        "KB504",
        "duplicate rule",
        "warning",
        "deadcode",
        "A rule stated twice — verbatim, or as an alphabetic variant (the "
        "rules theta-subsume each other).",
        "p(X) <- e(X).\np(Y) <- e(Y).",
    ),
    CatalogEntry(
        "KB505",
        "subsumed rule",
        "warning",
        "deadcode",
        "A sibling rule with the same head is strictly more general: every "
        "answer of this rule is already produced.",
        "p(X) <- e(X, Y).\np(X) <- e(X, Y) and (Y > 3).",
    ),
    CatalogEntry(
        "KB601",
        "conflicting definitions",
        "error",
        "consistency",
        "One predicate is defined (facts, rule heads, declarations) at two "
        "different arities; the knowledge base rejects such a program at "
        "load.",
        "p(a).\np(a, b).",
    ),
    CatalogEntry(
        "KB602",
        "rules shadow stored facts",
        "error",
        "consistency",
        "EDB and IDB are disjoint: a predicate may not have both stored "
        "facts and defining rules.",
        "f(a).\nf(X) <- e(X).",
    ),
    CatalogEntry(
        "KB603",
        "body reference at the wrong arity",
        "warning",
        "consistency",
        "The atom can never match and silently evaluates to the empty "
        "relation.  A warning, not an error: the engines do evaluate such "
        "programs.",
        "e(a).\np(X) <- e(X, Y).",
    ),
    CatalogEntry(
        "KB604",
        "reserved predicate name",
        "warning",
        "consistency",
        "The predicate name is a language keyword, only constructible "
        "through the Python API; such a knowledge base cannot round-trip "
        "through text.",
    ),
    CatalogEntry(
        "KB701",
        "order comparison over incomparable domains",
        "warning",
        "absint",
        "Type inference proves the two sides of an order comparison can "
        "only hold values of incomparable kinds (one side purely numeric, "
        "the other purely non-numeric), so the comparison raises or "
        "eliminates every row at evaluation time.",
        "q(1). r(a).\np(X, Y) <- q(X) and r(Y) and (X < Y).",
    ),
    CatalogEntry(
        "KB702",
        "join over provably disjoint domains",
        "warning",
        "absint",
        "The inferred column domains of two occurrences of a shared "
        "variable (or a constant argument and its column) have an empty "
        "intersection, so the join can never produce a row.",
        "q(1). r(a).\np(X) <- q(X) and r(X).",
    ),
    CatalogEntry(
        "KB703",
        "recursion grows through an unconstrained atom",
        "warning",
        "absint",
        "A recursive rule joins the recursive atom with a body atom sharing "
        "no variables with it (a cross product), so each iteration can "
        "multiply the derived relation instead of extending it.",
        "e(1). r(X) <- e(X).\nr(X) <- r(Y) and e(X).",
    ),
    CatalogEntry(
        "KB704",
        "rule unreachable by any call pattern",
        "warning",
        "absint",
        "The rule's constant head arguments are incompatible with every "
        "reference to its predicate (constants differ, or the inferred "
        "argument domain excludes them), so no call can ever select this "
        "rule.  Ad-hoc queries are not visible to the analysis; ignore the "
        "finding if the predicate is queried directly.",
        "e(1). level(admin, X) <- e(X).\ntop(X) <- level(guest, X).",
    ),
)

_BY_CODE = {entry.code: entry for entry in _ENTRIES}


def all_entries() -> tuple[CatalogEntry, ...]:
    """Every catalogue entry, in code order."""
    return _ENTRIES


def catalog_entry(code: str) -> CatalogEntry | None:
    """Look up one entry by code (case-insensitive); ``None`` if unknown."""
    return _BY_CODE.get(code.strip().upper())
