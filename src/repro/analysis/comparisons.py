"""Pass 4 — comparison satisfiability.

A rule whose body comparisons are jointly unsatisfiable can never fire: no
substitution makes the body true, so the rule contributes nothing under any
extension of the database.  Likewise an integrity constraint whose
comparisons are unsatisfiable is vacuous (it can never be violated).  Both
are almost certainly authoring mistakes — a contradiction like
``(X > 3) and (X < 2)``, or an impossible constant test ``(3 < 2)`` — so
this pass runs the dense-domain decision procedure of
:mod:`repro.logic.intervals` over every body and warns.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.analysis.registry import register
from repro.logic.intervals import satisfiable

UNSATISFIABLE_RULE = "KB401"
VACUOUS_CONSTRAINT = "KB402"


@register(
    "comparisons",
    "comparison-body satisfiability",
    (UNSATISFIABLE_RULE, VACUOUS_CONSTRAINT),
)
def run(model) -> Iterator[Diagnostic]:
    for rule in model.rules:
        comparisons = rule.comparison_body()
        if comparisons and not satisfiable(comparisons):
            yield Diagnostic(
                code=UNSATISFIABLE_RULE,
                severity=Severity.WARNING,
                message=(
                    "body comparisons are unsatisfiable; the rule can "
                    "never fire"
                ),
                predicate=rule.head.predicate,
                rule=str(rule),
                span=rule.span,
                hint=(
                    "the conjunction of the rule's comparison atoms has no "
                    "solution over a dense ordered domain — fix or remove "
                    "the contradicting comparisons"
                ),
                pass_name="comparisons",
            )
    for constraint in model.constraints:
        comparisons = tuple(a for a in constraint.body if a.is_comparison())
        if comparisons and not satisfiable(comparisons):
            yield Diagnostic(
                code=VACUOUS_CONSTRAINT,
                severity=Severity.WARNING,
                message=(
                    "constraint comparisons are unsatisfiable; the "
                    "constraint can never be violated"
                ),
                predicate=None,
                rule=str(constraint),
                span=constraint.span,
                hint=(
                    "a vacuous constraint enforces nothing — fix the "
                    "comparisons or delete it"
                ),
                pass_name="comparisons",
            )
