"""The diagnostic model of the static analyzer.

A :class:`Diagnostic` is one structured finding: a stable code (``KB101``),
a severity, the subject predicate and rule, an optional source span, a
human message and a fix hint.  An :class:`AnalysisReport` is an ordered,
queryable collection of them with stable text and JSON renderings — the
contract ``dbk lint --json`` exposes to CI gates.

Severity semantics:

* ``error`` — the program is outside the fragment the engines (or the
  paper's algorithms) are sound on; a ``lint="strict"`` load rejects it;
* ``warning`` — the program loads and evaluates, but a definition can
  never contribute (unsatisfiable body, unreachable predicate, subsumed
  rule) or is very likely a mistake (arity drift in a body atom);
* ``info`` — observations that need no action (permutation rules handled
  by bounded application, predicates that are query-only entry points).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.lang.source import SourceSpan


class Severity(enum.Enum):
    """How bad a finding is (ordered: error > warning > info)."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Numeric rank for ordering and ``--fail-on`` thresholds."""
        return {"error": 2, "warning": 1, "info": 0}[self.value]

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One static-analysis finding."""

    code: str                       #: stable identifier, e.g. "KB101"
    severity: Severity
    message: str                    #: human-readable, single line
    predicate: str | None = None    #: subject predicate, when one exists
    rule: str | None = None         #: the offending rule/constraint, rendered
    span: SourceSpan | None = None  #: source location, when known
    hint: str | None = None         #: how to fix it
    pass_name: str | None = None    #: which analysis pass produced it

    def format(self, path: str | None = None) -> str:
        """The one-line (plus hint) human rendering used by ``dbk lint``."""
        location = ""
        if self.span is not None:
            if self.span.line is None or self.span.column is None:
                # Rules built programmatically may carry a span without
                # positions; render a clean marker, not "None:None".
                location = "<generated>: "
            else:
                location = f"{self.span.line}:{self.span.column}: "
        prefix = f"{path}:" if path else ""
        lines = [f"{prefix}{location}{self.severity} {self.code}: {self.message}"]
        if self.rule is not None:
            lines.append(f"    rule: {self.rule}")
        if self.hint is not None:
            lines.append(f"    hint: {self.hint}")
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """A JSON-friendly rendering with a stable key set and order."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "predicate": self.predicate,
            "rule": self.rule,
            "span": self.span.as_dict() if self.span is not None else None,
            "hint": self.hint,
            "pass": self.pass_name,
        }

    def __str__(self) -> str:
        return self.format()


@dataclass
class AnalysisReport:
    """Every diagnostic of one analyzer run, in deterministic order."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __bool__(self) -> bool:
        return bool(self.diagnostics)

    # -- selection ---------------------------------------------------------------

    def by_severity(self, severity: Severity) -> list[Diagnostic]:
        """Findings of exactly one severity."""
        return [d for d in self.diagnostics if d.severity is severity]

    @property
    def errors(self) -> list[Diagnostic]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> list[Diagnostic]:
        return self.by_severity(Severity.WARNING)

    @property
    def infos(self) -> list[Diagnostic]:
        return self.by_severity(Severity.INFO)

    def codes(self) -> list[str]:
        """The distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def select(self, predicate: Callable[[Diagnostic], bool]) -> list[Diagnostic]:
        """Findings matching an arbitrary filter."""
        return [d for d in self.diagnostics if predicate(d)]

    @property
    def ok(self) -> bool:
        """Whether the program has no *errors* (warnings allowed)."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """Whether the program has neither errors nor warnings."""
        return not self.errors and not self.warnings

    def at_or_above(self, severity: Severity) -> list[Diagnostic]:
        """Findings whose severity is at least *severity*."""
        return [d for d in self.diagnostics if d.severity.rank >= severity.rank]

    # -- merging -----------------------------------------------------------------

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append findings (analyzer-internal)."""
        self.diagnostics.extend(diagnostics)

    def finalize(self) -> "AnalysisReport":
        """Sort into the stable report order: position, then code, then text."""
        self.diagnostics.sort(
            key=lambda d: (
                (d.span.line or 0) if d.span is not None else 0,
                (d.span.column or 0) if d.span is not None else 0,
                d.code,
                d.message,
            )
        )
        return self

    # -- rendering ---------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Counts per severity (always all three keys, stable order)."""
        return {
            "error": len(self.errors),
            "warning": len(self.warnings),
            "info": len(self.infos),
        }

    def summary_line(self) -> str:
        counts = self.summary()
        return (
            f"{counts['error']} error(s), {counts['warning']} warning(s), "
            f"{counts['info']} info"
        )

    def format(self, path: str | None = None) -> str:
        """The full human rendering (diagnostics, then a summary line)."""
        if not self.diagnostics:
            target = f"{path}: " if path else ""
            return f"{target}clean (no findings)"
        lines = [d.format(path) for d in self.diagnostics]
        lines.append(self.summary_line())
        return "\n".join(lines)

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly rendering: ``{"diagnostics": [...], "summary": ...}``."""
        return {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "summary": self.summary(),
        }

    def __str__(self) -> str:
        return self.format()
