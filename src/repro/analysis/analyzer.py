"""The analyzer driver: run every pass over a program or knowledge base.

Entry points:

* :func:`analyze` — accepts a :class:`KnowledgeBase`, a parsed
  :class:`~repro.lang.ast.Program`, or raw source text, and returns an
  :class:`AnalysisReport`;
* :func:`analyze_source` — like :func:`analyze` on text, but never raises:
  lexer/parser failures become the **KB001** diagnostic, so CI consumers
  always get structured output.

Both honour ``passes=`` (run a subset, by name) and ``ignore=`` (suppress
codes), which is what the CLI's ``--select`` / ``--ignore`` map to.
"""

from __future__ import annotations

from typing import Iterable, Union

from repro.analysis.diagnostics import AnalysisReport, Diagnostic, Severity
from repro.analysis.model import ProgramModel
from repro.analysis.registry import all_passes
from repro.errors import LanguageError
from repro.lang.ast import Program
from repro.lang.source import SourceSpan

#: Not a pass: the code used when the program does not even parse.
PARSE_ERROR = "KB001"

#: Anything the analyzer accepts as a target.
AnalysisTarget = Union["KnowledgeBase", Program, str]  # noqa: F821


def analyze(
    target: AnalysisTarget,
    *,
    passes: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
) -> AnalysisReport:
    """Run the static-analysis suite and return the finalized report.

    ``target`` may be raw program text (parsed here; parse failures raise,
    use :func:`analyze_source` for the never-raising variant), a parsed
    :class:`Program`, or a loaded :class:`KnowledgeBase`.
    """
    from repro.catalog.database import KnowledgeBase  # local: avoid cycle

    if isinstance(target, str):
        from repro.lang.parser import parse_program

        model = ProgramModel.from_program(parse_program(target))
    elif isinstance(target, Program):
        model = ProgramModel.from_program(target)
    elif isinstance(target, KnowledgeBase):
        model = ProgramModel.from_kb(target)
    else:
        raise TypeError(f"cannot analyze {type(target).__name__}")

    selected = set(passes) if passes is not None else None
    suppressed = set(ignore)
    report = AnalysisReport()
    for pass_ in all_passes():
        if selected is not None and pass_.name not in selected:
            continue
        report.extend(
            d for d in pass_.run(model) if d.code not in suppressed
        )
    return report.finalize()


def analyze_source(
    source: str,
    *,
    passes: Iterable[str] | None = None,
    ignore: Iterable[str] = (),
) -> AnalysisReport:
    """Analyze program text; syntax failures become KB001 diagnostics."""
    try:
        return analyze(source, passes=passes, ignore=ignore)
    except LanguageError as error:
        line = getattr(error, "line", 1)
        column = getattr(error, "column", 1)
        report = AnalysisReport()
        report.extend(
            [
                Diagnostic(
                    code=PARSE_ERROR,
                    severity=Severity.ERROR,
                    message=str(error),
                    span=SourceSpan(line, column, line, column + 1),
                    hint="fix the syntax error; no analysis ran past it",
                    pass_name="parse",
                )
            ]
        )
        return report.finalize()
