"""The analysis-pass registry.

Each pass module registers one entry point with :func:`register`; the
analyzer asks :func:`all_passes` for the full ordered suite.  Pass modules
are imported lazily on first use so that low-level consumers (notably
:mod:`repro.engine.safety`, which wraps the safety pass) can import their
pass directly without dragging the whole analyzer — and its heavier
dependencies — into the import graph.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import Diagnostic
    from repro.analysis.model import ProgramModel

#: The canonical pass order (modules under ``repro.analysis``).
PASS_ORDER = (
    "safety",
    "recursion",
    "stratification",
    "comparisons",
    "deadcode",
    "consistency",
    "absint",
)


@dataclass(frozen=True)
class AnalysisPass:
    """One registered pass: a name, the codes it may emit, its entry point."""

    name: str
    title: str
    codes: tuple[str, ...]
    run: Callable[["ProgramModel"], Iterable["Diagnostic"]]


_REGISTRY: dict[str, AnalysisPass] = {}
_LOADED = False


def register(
    name: str, title: str, codes: Iterable[str]
) -> Callable[[Callable], Callable]:
    """Decorator: register *fn* as the entry point of pass *name*."""

    def decorate(fn: Callable) -> Callable:
        _REGISTRY[name] = AnalysisPass(name, title, tuple(codes), fn)
        return fn

    return decorate


def _load_pass_modules() -> None:
    global _LOADED
    if _LOADED:
        return
    for name in PASS_ORDER:
        importlib.import_module(f"repro.analysis.{name}")
    _LOADED = True


def all_passes() -> tuple[AnalysisPass, ...]:
    """Every registered pass, in canonical order."""
    _load_pass_modules()
    return tuple(_REGISTRY[name] for name in PASS_ORDER if name in _REGISTRY)


def get_pass(name: str) -> AnalysisPass:
    """Look up one pass by name (raises ``KeyError`` for unknown names)."""
    _load_pass_modules()
    return _REGISTRY[name]


def known_codes() -> dict[str, str]:
    """Map of every registered diagnostic code to the pass that owns it."""
    _load_pass_modules()
    return {
        code: pass_.name for pass_ in all_passes() for code in pass_.codes
    }
