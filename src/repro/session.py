"""The single coherent instrument: one session, both kinds of queries.

The paper argues that "access to knowledge and data should be provided with
a single, coherent instrument".  :class:`Session` is that instrument: it
parses any statement of the language — definitions, ``retrieve``,
``describe`` (with every section 6 extension), ``compare`` — and dispatches
to the right evaluator over one knowledge base.

    >>> from repro import Session
    >>> from repro.datasets.university import university_kb
    >>> session = Session(university_kb())
    >>> session.query("retrieve honor(X) where enroll(X, databases)")
    ...
    >>> session.query("describe honor(X)")
    ...
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Union

from repro.errors import CoreError
from repro.catalog.database import KnowledgeBase
from repro.core.answers import DescribeResult
from repro.core.compare import ConceptComparison, compare_concepts
from repro.core.describe import describe
from repro.core.necessity import NecessityResult, describe_necessary, describe_without
from repro.core.possibility import PossibilityResult, is_possible
from repro.core.search import SearchConfig
from repro.core.wildcard import describe_wildcard
from repro.engine.evaluate import RetrieveResult, retrieve
from repro.engine.guard import ResourceGuard
from repro.engine.viewcache import ViewCache
from repro.lang.ast import (
    CompareStatement,
    ConstraintStatement,
    DescribeStatement,
    ExplainStatement,
    RetrieveStatement,
    RuleStatement,
    Statement,
)
from repro.lang.parser import parse_statement
from repro.obs.trace import Tracer

#: Everything a query can evaluate to.
QueryResult = Union[
    RetrieveResult,
    DescribeResult,
    NecessityResult,
    PossibilityResult,
    ConceptComparison,
    dict,  # wildcard describe: predicate -> DescribeResult
    str,   # acknowledgement of a definition
]


class PlanCache(OrderedDict):
    """A bounded LRU mapping for compiled conjunction plans/kernels.

    Keys are ``(kb.rules_version, executor, fingerprint)`` (built by
    :func:`repro.engine.evaluate._plan_cache_key`), so a rule change keys
    out every stale plan while fact-only mutations keep plans warm — that
    is the point: a repeat point lookup after EDB churn misses the
    statement memo (its key embeds relation versions) but still skips
    query-plan compilation.  Entries under dead rule versions age out of
    the LRU bound.
    """

    def __init__(self, limit: int = 256) -> None:
        super().__init__()
        self.limit = limit
        self.hits = 0
        self.misses = 0

    def get(self, key, default=None):
        found = super().get(key, default)
        if found is default:
            self.misses += 1
        else:
            self.hits += 1
            self.move_to_end(key)
        return found

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        while len(self) > self.limit:
            self.popitem(last=False)


def _complete(result: object) -> bool:
    """Whether a query result is exhaustive (no resource budget degraded it).

    Results without diagnostics (possibility tests, comparisons — which only
    run under strict guards) count as complete; a wildcard describe is
    complete iff every per-predicate answer is.
    """
    if isinstance(result, dict):
        return all(_complete(value) for value in result.values())
    diagnostics = getattr(result, "diagnostics", None)
    return diagnostics is None or diagnostics.complete


class Session:
    """A knowledge base plus the query language on top of it.

    ``guard`` is a resource-governance *specification*: each query runs
    under a fresh activation of it (:meth:`ResourceGuard.fresh`), so
    deadlines and counters are per-query while the cancellation token is
    shared across the session.  A ``guard=`` passed to :meth:`query` /
    :meth:`execute` overrides the session guard for that one statement.

    ``lint`` is the session's default static-analysis policy for
    :meth:`load`: ``"warn"`` (the default) runs the analyzer
    (:mod:`repro.analysis`) over every loaded program and stores the report
    in :attr:`last_lint`; ``"strict"`` additionally rejects programs with
    error findings (:class:`~repro.errors.LintError`, nothing loaded);
    ``"off"`` skips analysis.  A ``lint=`` passed to :meth:`load` overrides
    the session policy for that one program.

    ``cache`` controls the session's :class:`~repro.engine.viewcache.ViewCache`:
    ``True`` (the default) builds one over the knowledge base, ``False`` /
    ``None`` disables caching, and a :class:`ViewCache` instance (bound to
    the same knowledge base) is adopted as-is — useful for sharing one cache
    across sessions or tuning its budgets.  The cache memoizes both
    materialised IDB views for ``retrieve`` and knowledge-query results
    (``describe``/``compare``); version-keyed fingerprints invalidate them
    automatically on catalog mutation and transaction rollback, and only
    complete (non-degraded) answers are ever stored.  :meth:`cache_stats`
    reports its behaviour.

    ``trace`` turns on query tracing: ``True`` builds a fresh
    :class:`~repro.obs.trace.Tracer`, a :class:`Tracer` instance is adopted
    as-is (useful for sharing one collector across sessions), and ``False``
    (the default) keeps every engine on its untraced hot path.  Each traced
    query produces one span tree rooted at a ``query`` span — available as
    :attr:`last_trace` — annotated with the guard's consumed budgets and
    the :class:`~repro.engine.viewcache.CacheStats` delta, so the trace,
    the guard diagnostics, and the cache counters reconcile.

    ``durable`` opts the session into crash-safe persistence: the path
    names a directory holding a write-ahead log and snapshots
    (:mod:`repro.catalog.wal`).  An existing durable directory is
    recovered on open (``kb`` must be omitted); an empty or missing one
    adopts the given (or a fresh) knowledge base and starts logging.
    Every committed mutation is fsynced to the log before the mutating
    call returns; see ``docs/ROBUSTNESS.md`` ("Durability & recovery").
    """

    def __init__(
        self,
        kb: KnowledgeBase | None = None,
        engine: str = "seminaive",
        style: str = "standard",
        config: SearchConfig | None = None,
        executor: str | None = None,
        guard: ResourceGuard | None = None,
        cache: "ViewCache | bool | None" = True,
        lint: str = "warn",
        trace: "Tracer | bool | None" = False,
        plan_cache: bool = True,
        durable: str | None = None,
    ) -> None:
        if durable is not None:
            from repro.catalog.wal import open_durable

            # An existing durable directory is recovered (kb= must be
            # omitted); an empty one adopts the given or a fresh KB and
            # starts logging with an initial snapshot.
            tracer_arg = trace if isinstance(trace, Tracer) else None
            self.kb = open_durable(durable, kb=kb, tracer=tracer_arg)
        else:
            self.kb = kb if kb is not None else KnowledgeBase()
        self.engine = engine
        self.style = style
        self.config = config
        #: Bottom-up execution model for retrieve statements: "batch"
        #: (set-at-a-time hash joins), "nested" (tuple-at-a-time), or
        #: "kernel" (integer-interned join kernels; the default — see
        #: repro.engine.plan.default_executor and REPRO_EXECUTOR).
        from repro.engine.plan import resolve_executor

        self.executor = resolve_executor(executor)
        #: Compiled-plan cache for retrieve conjunctions (see
        #: :class:`PlanCache`), or ``None`` when disabled.
        self.plan_cache: PlanCache | None = PlanCache() if plan_cache else None
        #: Session-wide resource governance specification (see class doc).
        self.guard = guard
        from repro.catalog.loader import LINT_POLICIES

        if lint not in LINT_POLICIES:
            raise CoreError(
                f"unknown lint policy {lint!r}: expected one of {LINT_POLICIES}"
            )
        #: Default static-analysis policy for :meth:`load` (see class doc).
        self.lint = lint
        #: The :class:`~repro.analysis.AnalysisReport` of the most recent
        #: linted :meth:`load` (``None`` before any, or under ``lint="off"``).
        self.last_lint = None
        #: Materialised-view cache, or ``None`` when disabled (see class doc).
        if isinstance(cache, ViewCache):
            if cache.kb is not self.kb:
                raise CoreError("the supplied cache is bound to a different knowledge base")
            self.cache: ViewCache | None = cache
        else:
            self.cache = ViewCache(self.kb) if cache else None
        #: Span collector for query tracing, or ``None`` when tracing is off
        #: (see class doc).  Assignable at any time: the REPL's ``.trace``
        #: command simply swaps it.
        self.tracer: Tracer | None
        if isinstance(trace, Tracer):
            self.tracer = trace
        else:
            self.tracer = Tracer() if trace else None

    @property
    def last_trace(self):
        """The span tree of the most recent traced query (``None`` untraced)."""
        return self.tracer.last if self.tracer is not None else None

    # -- statement execution -------------------------------------------------------

    def _activate(self, guard: ResourceGuard | None) -> ResourceGuard | None:
        """The guard for one statement: per-query override, fresh counters."""
        spec = guard if guard is not None else self.guard
        return spec.fresh() if spec is not None else None

    def query(self, source: str, guard: ResourceGuard | None = None) -> QueryResult:
        """Parse and evaluate one statement.

        *guard* overrides the session guard for this statement only.
        """
        return self.execute(parse_statement(source), guard=guard)

    def execute(
        self, statement: Statement, guard: ResourceGuard | None = None
    ) -> QueryResult:
        """Evaluate a parsed statement.

        With tracing on (:attr:`tracer`), every query runs under a root
        ``query`` span annotated, on completion, with the guard's consumed
        budgets and the cache-stats delta — one trace object tells the whole
        story (see ``docs/OBSERVABILITY.md``).
        """
        active = self._activate(guard)
        tracer = self.tracer
        if tracer is None:
            return self._dispatch(statement, active, None)
        stats_before = self.cache.stats.as_dict() if self.cache is not None else None
        with tracer.span(
            "query",
            statement=str(statement),
            kind=type(statement).__name__,
            engine=self.engine,
            executor=self.executor,
        ):
            try:
                return self._dispatch(statement, active, tracer)
            finally:
                if active is not None:
                    tracer.annotate(
                        guard_steps=active.steps,
                        guard_facts=active.facts,
                        guard_iterations=active.iterations,
                        guard_complete=active.tripped is None,
                    )
                if stats_before is not None:
                    after = self.cache.stats.as_dict()
                    tracer.annotate(
                        cache_delta={
                            name: after[name] - before
                            for name, before in stats_before.items()
                            if isinstance(before, int) and after[name] != before
                        }
                    )

    def _dispatch(
        self,
        statement: Statement,
        active: ResourceGuard | None,
        tracer: "Tracer | None",
    ) -> QueryResult:
        if isinstance(statement, RuleStatement):
            rule = statement.rule
            if rule.is_fact():
                # Ground, bodiless clauses are stored facts: they belong to
                # an EDB predicate (declared on first use).
                predicate = rule.head.predicate
                if not self.kb.has_predicate(predicate):
                    self.kb.declare_edb(predicate, rule.head.arity)
                self.kb.add_fact(predicate, *rule.head.args)
                return f"stored: {rule}"
            self.kb.add_rule(rule)
            return f"defined: {rule}"
        if isinstance(statement, ConstraintStatement):
            self.kb.add_constraint(statement.constraint)
            return f"constrained: {statement.constraint}"
        if isinstance(statement, RetrieveStatement):
            return self._retrieve(statement, active, tracer)
        if isinstance(statement, DescribeStatement):
            return self._memoized(
                "describe", statement, self._describe, active, tracer
            )
        if isinstance(statement, ExplainStatement):
            from repro.engine.provenance import explain_statement

            return explain_statement(self.kb, statement.subject, statement.qualifier)
        if isinstance(statement, CompareStatement):
            return self._memoized("compare", statement, self._compare, active, tracer)
        raise CoreError(f"cannot execute statement: {statement!r}")

    # -- retrieve ----------------------------------------------------------------------

    def _retrieve(
        self, statement: RetrieveStatement, guard, tracer=None
    ) -> RetrieveResult:
        """A data query, memoized on its full dependency fingerprint.

        Unlike knowledge queries, retrieve answers depend on stored facts,
        so the memo key embeds the version of every EDB relation any
        referenced predicate transitively depends on
        (:meth:`ViewCache.dependency_fingerprint`): the warm path for an
        unchanged knowledge base is a dict probe — no fixpoint, no join.
        Any mutation changes the fingerprint and the stale entry simply
        ages out of the LRU.
        """
        if self.cache is None:
            return self._retrieve_cold(statement, guard, tracer)
        if guard is not None:
            guard.check()  # a memo hit must still observe cancellation
        atoms = (
            statement.subject,
            *statement.qualifier,
            *statement.negated_qualifier,
        )
        predicates = sorted(
            {atom.predicate for atom in atoms if not atom.is_comparison()}
        )
        key = self.cache.statement_key(
            "retrieve",
            str(statement),
            self.engine,
            self.executor,
            self.cache.dependency_fingerprint(predicates),
        )
        memoized = self.cache.lookup_statement(key)
        if memoized is not None:
            if tracer is not None:
                tracer.count("statement_memo_hits")
            return memoized
        if tracer is not None:
            tracer.count("statement_memo_misses")
        result = self._retrieve_cold(statement, guard, tracer)
        if _complete(result):
            self.cache.store_statement(key, result)
        return result

    def _retrieve_cold(
        self, statement: RetrieveStatement, guard, tracer=None
    ) -> RetrieveResult:
        return retrieve(
            self.kb,
            statement.subject,
            statement.qualifier,
            engine=self.engine,
            negated_qualifier=statement.negated_qualifier,
            executor=self.executor,
            guard=guard,
            cache=self.cache,
            tracer=tracer,
            plan_cache=self.plan_cache,
        )

    # -- knowledge-query memo ----------------------------------------------------------

    def _memoized(self, kind, statement, evaluate, guard, tracer=None):
        """Evaluate a knowledge query through the cache's statement memo.

        Describe/compare answers depend on the rule and constraint sets
        only — never on stored facts — so the memo key is the statement text
        plus the answer-shaping knobs; the catalog versions are embedded by
        :meth:`ViewCache.statement_key`.  Degraded (budget-tripped) results
        are returned but not stored: a cached answer must be complete.
        """
        if self.cache is None:
            return evaluate(statement, guard, tracer)
        if guard is not None:
            guard.check()  # a memo hit must still observe cancellation
        key = self.cache.statement_key(
            kind, str(statement), self.style, repr(self.config)
        )
        memoized = self.cache.lookup_statement(key)
        if memoized is not None:
            if tracer is not None:
                tracer.count("statement_memo_hits")
            return memoized
        if tracer is not None:
            tracer.count("statement_memo_misses")
        result = evaluate(statement, guard, tracer)
        if _complete(result):
            self.cache.store_statement(key, result)
        return result

    def cache_stats(self) -> dict:
        """A JSON-friendly snapshot of the view cache's behaviour.

        ``{"enabled": False}`` when the session runs uncached; otherwise the
        :class:`~repro.engine.viewcache.CacheStats` counters plus hit rate.
        ``journal_resets`` (always present) totals the per-relation
        :attr:`~repro.catalog.relation.Relation.journal_resets` counters:
        each reset strands incremental consumers, so a rising value
        explains view-cache full-recompute fallbacks after bulk mutations.
        """
        journal_resets = sum(
            relation.journal_resets for relation in self.kb._relations.values()
        )
        if self.cache is None:
            return {"enabled": False, "journal_resets": journal_resets}
        return {
            "enabled": True,
            "journal_resets": journal_resets,
            **self.cache.stats.as_dict(),
        }

    # -- describe dispatch ------------------------------------------------------------

    def _describe(
        self,
        statement: DescribeStatement,
        guard: ResourceGuard | None = None,
        tracer=None,
    ) -> QueryResult:
        if statement.wildcard:
            if statement.negated_qualifier:
                raise CoreError("wildcard describe does not take negated conjuncts")
            return describe_wildcard(
                self.kb, statement.qualifier, config=self.config, style=self.style,
                guard=guard,
            )
        if statement.subject is None:
            if statement.negated_qualifier:
                raise CoreError("subjectless describe does not take negated conjuncts")
            return is_possible(
                self.kb, statement.qualifier, config=self.config, style=self.style,
                guard=guard,
            )
        if statement.negated_qualifier:
            if len(statement.negated_qualifier) != 1 or statement.qualifier:
                raise CoreError(
                    "the necessity test takes exactly one negated conjunct "
                    "and no positive conjuncts"
                )
            return describe_without(
                self.kb,
                statement.subject,
                statement.negated_qualifier[0],
                config=self.config,
                style=self.style,
                guard=guard,
            )
        if statement.alternatives:
            from repro.core.disjunction import describe_disjunctive

            if statement.necessary:
                raise CoreError("'necessary' cannot be combined with 'or'")
            return describe_disjunctive(
                self.kb,
                statement.subject,
                (statement.qualifier, *statement.alternatives),
                style=self.style,
                config=self.config,
                guard=guard,
            )
        if statement.necessary:
            return describe_necessary(
                self.kb,
                statement.subject,
                statement.qualifier,
                style=self.style,
                config=self.config,
                guard=guard,
            )
        return describe(
            self.kb,
            statement.subject,
            statement.qualifier,
            style=self.style,
            config=self.config,
            guard=guard,
            tracer=tracer,
        )

    def _compare(
        self,
        statement: CompareStatement,
        guard: ResourceGuard | None = None,
        tracer=None,
    ) -> ConceptComparison:
        left, right = statement.left, statement.right
        if left.subject is None or right.subject is None or left.wildcard or right.wildcard:
            raise CoreError("compare requires two subjects")
        return compare_concepts(
            self.kb,
            left.subject,
            right.subject,
            left_hypothesis=left.qualifier,
            right_hypothesis=right.qualifier,
            config=self.config,
            style=self.style,
            guard=guard,
        )

    # -- convenience ------------------------------------------------------------------

    def load(self, source: str, lint: str | None = None) -> int:
        """Load a program (facts, rules, constraints), atomically.

        Returns the statement count.  All-or-nothing: if any definition is
        invalid — or *lint* (defaulting to the session policy) is
        ``"strict"`` and the static analyzer reports errors — the knowledge
        base is left exactly as it was.  Under ``"warn"`` and ``"strict"``
        the analysis report lands in :attr:`last_lint`.
        """
        from repro.catalog.loader import lint_policy_check
        from repro.lang.parser import parse_program

        program = parse_program(source)
        report = lint_policy_check(program, lint if lint is not None else self.lint)
        if report is not None:
            self.last_lint = report
        count = 0
        with self.kb.transaction():
            for statement in program.statements:
                if isinstance(statement, (RuleStatement, ConstraintStatement)):
                    self.execute(statement)
                    count += 1
                else:
                    raise CoreError("load() accepts definitions only; use query()")
        return count

    def lint_report(self):
        """Run the static analyzer over the current knowledge base.

        Unlike :attr:`last_lint` (the report of the most recent load) this
        reflects everything in the knowledge base right now, including
        definitions added through :meth:`query`.
        """
        from repro.analysis.analyzer import analyze

        return analyze(self.kb)
