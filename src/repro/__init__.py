"""repro — a reproduction of "Querying Database Knowledge" (Motro & Yuan,
SIGMOD 1990).

A knowledge-rich (deductive) database in pure Python, with the paper's twin
query statements behind one coherent instrument:

* ``retrieve p where psi`` — data queries, answered with data (semi-naive
  bottom-up, top-down tabled, or magic-sets evaluation; stratified negation
  in rules and qualifiers);
* ``describe p where psi`` — knowledge queries, answered with *rules*
  describing what the concept ``p`` means under the circumstances ``psi``
  (Algorithms 1 and 2, with the Imielinski transformation, tag bounds and
  typing guard for recursion);
* the section 6 extensions: ``where necessary``, negated hypotheses
  (necessity tests), subjectless describe (possibility tests), wildcard
  describe, disjunctive hypotheses, and ``compare``;
* the surrounding system: proof trees (``explain``), intensional answers,
  rule-base diagnostics, incremental view maintenance, and persistence.

Quick start::

    from repro import Session
    from repro.datasets import university_kb

    session = Session(university_kb())
    print(session.query("retrieve honor(X) where enroll(X, databases)"))
    print(session.query("describe honor(X)"))
"""

from repro.errors import (
    EvaluationLimitError,
    LintError,
    QueryCancelled,
    ReproError,
    ResourceExhausted,
    SearchBudgetExceeded,
)
from repro.analysis import AnalysisReport, Diagnostic, Severity, SourceSpan
from repro.analysis.analyzer import analyze, analyze_source
from repro.catalog.database import KnowledgeBase
from repro.catalog.loader import kb_from_program, load_file, load_program
from repro.catalog.persist import export_csv, import_csv, load_kb, save_kb
from repro.core.answers import DescribeResult, KnowledgeAnswer
from repro.core.compare import ConceptComparison, compare_concepts
from repro.core.describe import describe
from repro.core.diagnostics import audit
from repro.core.disjunction import describe_disjunctive
from repro.core.intensional import intensional_answer
from repro.core.necessity import describe_necessary, describe_without
from repro.core.possibility import is_possible
from repro.core.search import SearchConfig
from repro.core.transform import transform_knowledge_base
from repro.core.wildcard import describe_wildcard
from repro.engine.evaluate import RetrieveResult, retrieve
from repro.engine.guard import CancellationToken, Diagnostics, ResourceGuard
from repro.engine.provenance import explain, explain_all
from repro.lang.parser import parse_atom, parse_body, parse_rule, parse_statement
from repro.logic.atoms import Atom
from repro.logic.clauses import IntegrityConstraint, Rule
from repro.logic.terms import Constant, Variable
from repro.session import Session

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "LintError",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "SourceSpan",
    "analyze",
    "analyze_source",
    "ResourceExhausted",
    "EvaluationLimitError",
    "SearchBudgetExceeded",
    "QueryCancelled",
    "ResourceGuard",
    "CancellationToken",
    "Diagnostics",
    "KnowledgeBase",
    "kb_from_program",
    "load_file",
    "load_program",
    "export_csv",
    "import_csv",
    "load_kb",
    "save_kb",
    "DescribeResult",
    "KnowledgeAnswer",
    "ConceptComparison",
    "compare_concepts",
    "describe",
    "audit",
    "describe_disjunctive",
    "intensional_answer",
    "describe_necessary",
    "describe_without",
    "is_possible",
    "SearchConfig",
    "transform_knowledge_base",
    "describe_wildcard",
    "RetrieveResult",
    "retrieve",
    "explain",
    "explain_all",
    "parse_atom",
    "parse_body",
    "parse_rule",
    "parse_statement",
    "Atom",
    "IntegrityConstraint",
    "Rule",
    "Constant",
    "Variable",
    "Session",
    "__version__",
]
