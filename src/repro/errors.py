"""Exception hierarchy for the repro deductive database.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type.  Sub-hierarchies mirror the subsystems:
logic kernel, catalog, language, engine, and the knowledge-query core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class LogicError(ReproError):
    """Errors raised by the logic kernel (terms, clauses, unification)."""


class UnificationError(LogicError):
    """Two expressions could not be unified (raised by strict APIs only)."""


class TypingError(LogicError):
    """A rule violates the typing discipline required of recursive rules."""


class CatalogError(ReproError):
    """Errors raised by the catalog (schemas, relations, knowledge base)."""


class SchemaError(CatalogError):
    """A predicate was declared or used inconsistently with its schema."""


class ArityError(SchemaError):
    """An atom's argument count disagrees with its predicate's arity."""


class DuplicatePredicateError(CatalogError):
    """A predicate name was declared in more than one of EDB/IDB/built-ins."""


class UnknownPredicateError(CatalogError):
    """A query or rule referenced a predicate the database does not know."""


class IntegrityError(CatalogError):
    """A stored fact violates a declared integrity constraint."""


class LanguageError(ReproError):
    """Errors raised by the lexer/parser for the query language."""


class LexError(LanguageError):
    """The input text contains a character sequence that is not a token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """The token stream does not form a valid statement."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class EngineError(ReproError):
    """Errors raised while evaluating data (retrieve) queries."""


class SafetyError(EngineError):
    """A rule or query is unsafe (unbound head or comparison variables)."""


class EvaluationLimitError(EngineError):
    """Evaluation exceeded a caller-imposed step or size budget."""


class CoreError(ReproError):
    """Errors raised by the knowledge-query (describe) core."""


class NonRecursiveSubjectRequired(CoreError):
    """Algorithm 1 was invoked on a subject that depends on recursion."""


class TransformError(CoreError):
    """The Imielinski transformation could not be applied to a rule set."""


class SearchBudgetExceeded(CoreError):
    """The derivation-tree search exceeded its step budget.

    Algorithm 1 on recursive subjects is expected to trip this; the error is
    how the library demonstrates the paper's Examples 6-8 divergence.
    """

    def __init__(
        self,
        steps: int,
        answers_so_far: list | None = None,
        reason: str | None = None,
    ) -> None:
        super().__init__(reason or f"derivation search exceeded {steps} steps")
        self.steps = steps
        self.answers_so_far = answers_so_far or []
