"""Exception hierarchy for the repro deductive database.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch one type.  Sub-hierarchies mirror the subsystems:
logic kernel, catalog, language, engine, and the knowledge-query core.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class LogicError(ReproError):
    """Errors raised by the logic kernel (terms, clauses, unification)."""


class UnificationError(LogicError):
    """Two expressions could not be unified (raised by strict APIs only)."""


class TypingError(LogicError):
    """A rule violates the typing discipline required of recursive rules."""


class CatalogError(ReproError):
    """Errors raised by the catalog (schemas, relations, knowledge base)."""


class SchemaError(CatalogError):
    """A predicate was declared or used inconsistently with its schema."""


class ArityError(SchemaError):
    """An atom's argument count disagrees with its predicate's arity."""


class DuplicatePredicateError(CatalogError):
    """A predicate name was declared in more than one of EDB/IDB/built-ins."""


class UnknownPredicateError(CatalogError):
    """A query or rule referenced a predicate the database does not know."""


class IntegrityError(CatalogError):
    """A stored fact violates a declared integrity constraint."""


class WalError(CatalogError):
    """The durable write-ahead log could not be written or parsed."""


class RecoveryError(CatalogError):
    """Crash recovery of a durable knowledge base failed.

    Raised when the snapshot or write-ahead log is unreadable, fails its
    checksum, or replay does not verify against the log's final version
    stamps.  Structured fields locate the failure on disk so the ``dbk``
    CLI can report it like any other source-located diagnostic:

    ``path``
        the file that failed (snapshot or log), when known;
    ``offset``
        byte offset of the failing record in that file, when known;
    ``state``
        the :class:`~repro.catalog.recovery.Recoverer` state at failure
        time (``"inspecting"``, ``"loading_snapshot"``, ...).
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | None = None,
        offset: int | None = None,
        state: str | None = None,
    ) -> None:
        located = message
        if path is not None:
            where = path if offset is None else f"{path}:{offset}"
            located = f"{where}: {message}"
        super().__init__(located)
        self.path = path
        self.offset = offset
        self.state = state

    def __reduce__(self):
        # Keyword-only fields need explicit pickle support (cf.
        # ResourceExhausted): rebuild from the located message, then
        # restore the instance dict.
        return (_rebuild_recovery_error, (str(self), self.__dict__.copy()))


def _rebuild_recovery_error(message: str, fields: dict) -> "RecoveryError":
    """Unpickle helper: the located message must not be re-prefixed."""
    error = RecoveryError.__new__(RecoveryError)
    Exception.__init__(error, message)
    error.__dict__.update(fields)
    return error


class LanguageError(ReproError):
    """Errors raised by the lexer/parser for the query language."""


class LexError(LanguageError):
    """The input text contains a character sequence that is not a token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LanguageError):
    """The token stream does not form a valid statement."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class EngineError(ReproError):
    """Errors raised while evaluating data (retrieve) queries."""


class SafetyError(EngineError):
    """A rule or query is unsafe (unbound head or comparison variables).

    Carries the structured findings behind the message: ``diagnostics`` is
    a tuple of :class:`repro.analysis.diagnostics.Diagnostic` records (may
    be empty for ad-hoc raises), ``code`` is the first finding's stable
    code (e.g. ``"KB101"``) and ``span`` its source location, when known.
    """

    def __init__(self, message: str, *, diagnostics: object = ()) -> None:
        super().__init__(message)
        self.diagnostics = tuple(diagnostics)  # type: ignore[arg-type]

    @property
    def code(self) -> str | None:
        """The first finding's diagnostic code, when structured."""
        return self.diagnostics[0].code if self.diagnostics else None

    @property
    def span(self) -> object | None:
        """The first finding's source span, when structured."""
        return self.diagnostics[0].span if self.diagnostics else None

    def __reduce__(self):
        # Keyword-only fields need explicit pickle support (cf.
        # ResourceExhausted below): rebuild from the message, then restore
        # the instance dict.
        return (self.__class__, (str(self),), dict(self.__dict__))


class LintError(ReproError):
    """A ``lint="strict"`` load rejected a program with static errors.

    ``report`` is the full :class:`repro.analysis.diagnostics.AnalysisReport`;
    the message lists the error findings.
    """

    def __init__(self, message: str, *, report: object = None) -> None:
        super().__init__(message)
        self.report = report

    def __reduce__(self):
        return (self.__class__, (str(self),), dict(self.__dict__))


class ResourceExhausted(ReproError):
    """A query tripped a resource budget (deadline, facts, steps, ...).

    The common base of every budget error, so governed callers can catch one
    type regardless of which evaluation path (data engines or the
    derivation-tree search) exhausted its budget.  Structured fields:

    ``budget``
        which budget tripped — one of ``"deadline"``, ``"facts"``,
        ``"steps"``, ``"depth"``, ``"iterations"``, ``"cancelled"``;
    ``consumed``
        how much of the resource was consumed at trip time;
    ``limit``
        the configured limit (seconds for deadlines, counts otherwise).

    Instances survive pickling with their structured fields intact (needed
    for multi-process evaluation).
    """

    def __init__(
        self,
        message: str = "resource budget exhausted",
        *,
        budget: str | None = None,
        consumed: object = None,
        limit: object = None,
    ) -> None:
        super().__init__(message)
        self.budget = budget
        self.consumed = consumed
        self.limit = limit

    def __reduce__(self):
        # Exceptions with keyword-only fields need explicit pickle support:
        # rebuild from the message, then restore the instance dict.
        return (self.__class__, (str(self),), dict(self.__dict__))


class EvaluationLimitError(EngineError, ResourceExhausted):
    """Evaluation exceeded a caller-imposed step or size budget."""


class QueryCancelled(ResourceExhausted):
    """The query's cooperative cancellation token was triggered."""

    def __init__(self, message: str = "query cancelled", **fields: object) -> None:
        fields.setdefault("budget", "cancelled")
        ResourceExhausted.__init__(self, message, **fields)  # type: ignore[arg-type]


class ServerError(ReproError):
    """Errors raised by the concurrent query server (:mod:`repro.server`)."""


class AdmissionError(ServerError, ResourceExhausted):
    """A request was rejected at admission control (QoS tier exhausted).

    Raised before any evaluation starts: the client's tier had no free
    slot and its queue was full (or the queue wait timed out).  The HTTP
    front end maps it to ``429 Too Many Requests``.  ``tier`` names the
    QoS tier that rejected the request; the inherited
    :class:`ResourceExhausted` fields carry the structured budget data
    (``budget="admission"``, consumed/limit = queued/queue capacity).
    """

    def __init__(
        self, message: str = "admission rejected", *, tier: str | None = None,
        **fields: object,
    ) -> None:
        fields.setdefault("budget", "admission")
        ResourceExhausted.__init__(self, message, **fields)  # type: ignore[arg-type]
        self.tier = tier


class CoreError(ReproError):
    """Errors raised by the knowledge-query (describe) core."""


class NonRecursiveSubjectRequired(CoreError):
    """Algorithm 1 was invoked on a subject that depends on recursion."""


class TransformError(CoreError):
    """The Imielinski transformation could not be applied to a rule set."""


class SearchBudgetExceeded(CoreError, ResourceExhausted):
    """The derivation-tree search exceeded its budget.

    Algorithm 1 on recursive subjects is expected to trip this; the error is
    how the library demonstrates the paper's Examples 6-8 divergence.

    Accepts the legacy ``(steps, answers_so_far, reason)`` form as well as
    the structured ``(message, budget=..., consumed=..., limit=...)`` form
    shared by the :class:`ResourceExhausted` family.
    """

    def __init__(
        self,
        steps: int | str | None = None,
        answers_so_far: list | None = None,
        reason: str | None = None,
        *,
        budget: str = "steps",
        consumed: object = None,
        limit: object = None,
    ) -> None:
        if isinstance(steps, str):
            reason = reason or steps
            steps = None
        if steps is not None:
            consumed = consumed if consumed is not None else steps
            limit = limit if limit is not None else steps
        message = reason or f"derivation search exceeded {limit} steps"
        ResourceExhausted.__init__(
            self, message, budget=budget, consumed=consumed, limit=limit
        )
        self.steps = steps if steps is not None else consumed
        self.answers_so_far = answers_so_far or []
