"""In-memory stored relations with per-column hash indexes.

Each EDB predicate's fact set is a :class:`Relation`: a set of constant
tuples plus lazily built per-column indexes, so pattern lookups with bound
arguments avoid full scans.  This is the storage substrate under the
deductive engine.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Iterator, Sequence

from repro.catalog.columnar import ColumnBlock, numpy_backend, numpy_min_rows
from repro.catalog.symbols import SYMBOLS
from repro.errors import ArityError, CatalogError
from repro.logic.terms import Constant, Term, is_constant, make_term

#: A stored tuple: constants only.
Row = tuple[Constant, ...]

#: How many recent mutations a relation's change journal retains.  Deltas
#: older than the journal window (or spanning a :meth:`Relation.restore` /
#: :meth:`Relation.clear`) are reported as unavailable, forcing dependent
#: caches to fall back to full recomputation.
JOURNAL_LIMIT = 1024


class Relation:
    """A set of ground tuples of fixed arity, with hash indexes.

    Indexes are built per column on first use and maintained incrementally
    afterwards.  Iteration order is insertion order (deterministic runs).
    """

    def __init__(self, arity: int, rows: Iterable[Sequence[object]] = ()) -> None:
        if arity < 0:
            raise CatalogError(f"relation arity must be non-negative, got {arity}")
        self.arity = arity
        #: A frozen relation belongs to a published :class:`KBSnapshot`
        #: (:mod:`repro.catalog.snapshot`): every mutator raises, so readers
        #: holding it need no locks.
        self._frozen = False
        #: Whether ``_rows``/``_introws`` are currently shared with a frozen
        #: snapshot copy.  The first mutation after a :meth:`freeze` rebinds
        #: them to private copies (copy-on-write), so publication itself is
        #: O(1) per relation and the copy is paid only by relations that
        #: actually change afterwards.
        self._shared = False
        self._rows: dict[Row, None] = {}
        #: Index buckets are insertion-ordered ``dict[Row, None]`` sets:
        #: deterministic iteration like a list, O(1) delete unlike one.
        self._indexes: dict[int, dict[Constant, dict[Row, None]]] = {}
        #: Mutation counter; memoized statistics and external caches (the
        #: batch executor's hash tables) are valid while it is unchanged.
        self._version = 0
        #: Memoized per-column distinct counts: column -> (version, count).
        self._stats: dict[int, tuple[int, int]] = {}
        #: Bounded change journal: entry i records the mutation that took the
        #: relation from version ``_journal_base + i`` to ``+ i + 1``.
        self._journal: deque[tuple[str, Row]] = deque()
        self._journal_base = 0
        #: How many times the journal was reset by a wholesale state change
        #: (clear/restore/bulk load).  Each reset strands incremental
        #: consumers — view-cache repairs and WAL diffs fall back to full
        #: recompute/reload — so the counter makes those fallbacks
        #: diagnosable (surfaced via ``Session.cache_stats``).
        self.journal_resets = 0
        #: Interned mirror of ``_rows``: symbol-id tuples in insertion
        #: order, maintained eagerly on the append path (constants are
        #: interned at insert time) and dropped to ``None`` (dirty) by any
        #: non-append mutation; :meth:`int_rows` rebuilds it lazily.
        self._introws: list[tuple[int, ...]] | None = []
        #: Memoized columnar snapshot, valid while its version matches.
        self._block: ColumnBlock | None = None
        #: A 2-D id block that *is* the interned mirror, stashed by
        #: :meth:`load_interned_block` as ``(block, version)``.  While the
        #: version still matches, :meth:`int_rows` materializes tuples
        #: from it (one C-level ``tolist``) instead of re-interning every
        #: constant; any later mutation simply outdates it.
        self._intblock: tuple[object, int] | None = None
        #: Memoized row sequence (insertion order) for positional access
        #: aligned with the columnar mirror: (version, list of rows).
        self._rowseq: tuple[int, list[Row]] | None = None
        for row in rows:
            self.insert(row)

    # -- mutation -----------------------------------------------------------------

    def _assert_mutable(self) -> None:
        if self._frozen:
            raise CatalogError(
                "relation belongs to a published snapshot and is immutable; "
                "mutate the live knowledge base instead"
            )

    def _unshare(self) -> None:
        """Privatize row storage shared with a frozen snapshot copy.

        Called on entry to every in-place mutator: the frozen copy made by
        :meth:`freeze` keeps the *original* dict/list, the live relation
        continues on private copies.  Mutators that wholesale-rebind their
        storage (:meth:`restore`, :meth:`clear`) just drop the shared flag.
        """
        if self._shared:
            self._rows = dict(self._rows)
            if self._introws is not None:
                self._introws = list(self._introws)
            self._shared = False

    def _coerce(self, row: Sequence[object]) -> Row:
        if len(row) != self.arity:
            raise ArityError(f"expected {self.arity} columns, got {len(row)}")
        coerced = []
        for value in row:
            term = make_term(value)
            if not is_constant(term):
                raise CatalogError(f"stored rows must be ground, got variable {term}")
            coerced.append(term)
        return tuple(coerced)

    def insert(self, row: Sequence[object]) -> bool:
        """Insert a row; returns ``False`` if it was already present."""
        self._assert_mutable()
        coerced = self._coerce(row)
        if coerced in self._rows:
            return False
        self._unshare()
        self._rows[coerced] = None
        self._version += 1
        self._log("+", coerced)
        if self._introws is not None:
            self._introws.append(SYMBOLS.intern_row(coerced))
        for column, index in self._indexes.items():
            index.setdefault(coerced[column], {})[coerced] = None
        return True

    def insert_many(self, rows: Iterable[Sequence[object]]) -> int:
        """Insert many rows; returns how many were new."""
        return sum(1 for row in rows if self.insert(row))

    def load_interned(self, int_rows: Sequence[tuple[int, ...]]) -> int:
        """Bulk-load rows given as symbol-id tuples (the kernel flush path).

        Semantically ``insert_many`` of the externalized rows, but
        wholesale: one C-level dict build instead of per-row coercion and
        journaling.  Because the mutation is not row-at-a-time, journal
        semantics follow :meth:`restore` — derived structures drop, the
        version bumps, and the journal resets so incremental consumers
        recompute.  Returns how many rows were new.
        """
        self._assert_mutable()
        if not int_rows:
            return 0
        extern_row = SYMBOLS.extern_row
        rows = [extern_row(irow) for irow in int_rows]
        for row in rows:
            if len(row) != self.arity:
                raise ArityError(f"expected {self.arity} columns, got {len(row)}")
        self._unshare()
        before = len(self._rows)
        was_empty = before == 0
        self._rows.update(dict.fromkeys(rows))
        added = len(self._rows) - before
        if not added:
            return 0
        self._invalidate_derived()
        if was_empty and len(self._rows) == len(int_rows):
            # No duplicates collapsed: the id tuples are the exact mirror.
            self._introws = list(int_rows)
        return added

    def load_interned_block(self, block) -> int:
        """Bulk-load a 2-D block of *distinct* symbol-id rows.

        The vector kernel flush: ``block`` is anything with ``shape``,
        ``ravel()``, and ``tolist()`` — in practice a numpy ``int64``
        array.  Distinct id rows externalize to distinct constant rows
        (equal constants intern to one id), so unlike
        :meth:`load_interned` no duplicate collapse is possible and the
        externalization runs as one flat :meth:`SymbolTable.extern_block`
        pass.  Mutation semantics match :meth:`load_interned`: derived
        structures drop, the version bumps, the journal resets.
        """
        self._assert_mutable()
        count, width = block.shape
        if width != self.arity:
            raise ArityError(f"expected {self.arity} columns, got {width}")
        if not count:
            return 0
        if width == 0:
            rows: list[Row] = [()]
        else:
            rows = SYMBOLS.extern_block(block.ravel().tolist(), width)
        self._unshare()
        before = len(self._rows)
        was_empty = before == 0
        if was_empty:
            # One dict build instead of build-then-merge (restore() sets
            # the same precedent for rebinding the row dict wholesale).
            self._rows = dict.fromkeys(rows)
        else:
            self._rows.update(dict.fromkeys(rows))
        added = len(self._rows) - before
        if not added:
            return 0
        self._invalidate_derived()
        if was_empty and len(self._rows) == count:
            # The block *is* the interned mirror; int_rows() materializes
            # tuples from it lazily if and when a consumer asks.
            self._intblock = (block, self._version)
        return added

    def delete(self, row: Sequence[object]) -> bool:
        """Delete a row; returns ``False`` if it was absent.

        O(1) per maintained index: buckets are hash sets, not lists.
        """
        self._assert_mutable()
        coerced = self._coerce(row)
        if coerced not in self._rows:
            return False
        self._unshare()
        del self._rows[coerced]
        self._version += 1
        self._log("-", coerced)
        self._introws = None
        self._block = None
        self._intblock = None
        for column, index in self._indexes.items():
            bucket = index.get(coerced[column])
            if bucket is not None:
                bucket.pop(coerced, None)
                if not bucket:
                    del index[coerced[column]]
        return True

    def clear(self) -> None:
        """Remove every row."""
        self._assert_mutable()
        if self._shared:
            # The frozen snapshot copy keeps the old dict; no point copying
            # rows only to clear them.
            self._rows = {}
            self._shared = False
        else:
            self._rows.clear()
        self._invalidate_derived()

    def _invalidate_derived(self) -> None:
        """Drop every derived structure after a wholesale row-set change.

        One sequence shared by :meth:`clear` and :meth:`restore` so the two
        can never diverge: indexes and memoized per-column statistics are
        dropped (rebuilt lazily), the version is bumped so external caches
        keyed on ``(relation, version)`` cannot serve stale state, and the
        journal is reset so incremental consumers fall back to full
        recomputation.  A missed step here is a stale-probe-column bug in
        :meth:`lookup` — pinned by ``tests/catalog/test_relation_invalidation.py``.
        """
        self._indexes.clear()
        self._stats.clear()
        self._introws = None
        self._block = None
        self._intblock = None
        self._version += 1
        self._reset_journal()

    def _log(self, op: str, row: Row) -> None:
        self._journal.append((op, row))
        if len(self._journal) > JOURNAL_LIMIT:
            self._journal.popleft()
            self._journal_base += 1

    def _reset_journal(self) -> None:
        """Forget the journal after a wholesale state change (clear/restore).

        Deltas spanning the reset become unreconstructable, which is exactly
        right: the mutation was not row-at-a-time, so version-keyed caches
        must recompute from scratch.
        """
        self._journal.clear()
        self._journal_base = self._version
        self.journal_resets += 1

    def changes_since(self, version: int) -> list[tuple[str, Row]] | None:
        """The mutations applied since *version*, oldest first, or ``None``.

        Each entry is ``("+", row)`` for an insert or ``("-", row)`` for a
        delete.  ``None`` means the journal cannot reconstruct the delta —
        *version* predates the journal window, or a :meth:`clear` /
        :meth:`restore` intervened — and the caller must treat the whole
        relation as changed.
        """
        if version == self._version:
            return []
        if version < self._journal_base or version > self._version:
            return None
        start = version - self._journal_base
        return list(self._journal)[start:]

    # -- access ---------------------------------------------------------------------

    @property
    def version(self) -> int:
        """Mutation counter: changes iff the row set changed.

        External caches keyed on ``(relation, version)`` — memoized
        statistics, the batch executor's hash tables — stay valid exactly
        while the version is unchanged.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __contains__(self, row: object) -> bool:
        if not isinstance(row, tuple):
            return False
        try:
            coerced = self._coerce(row)
        except (ArityError, CatalogError):
            return False
        return coerced in self._rows

    def rows(self) -> list[Row]:
        """All rows, in insertion order."""
        return list(self._rows)

    def int_rows(self) -> list[tuple[int, ...]]:
        """The rows as symbol-id tuples, in insertion order.

        Ids come from the process-wide :data:`~repro.catalog.symbols.SYMBOLS`
        table; id-equality is exactly constant-equality.  The mirror is
        maintained eagerly on inserts and rebuilt here after any other
        mutation.  Callers must treat the returned list as immutable — it
        is shared with the kernel executor's caches, which key on
        :attr:`version`.
        """
        rows = self._introws
        if rows is None:
            stashed = self._intblock
            if stashed is not None and stashed[1] == self._version:
                rows = [tuple(irow) for irow in stashed[0].tolist()]
            else:
                intern_row = SYMBOLS.intern_row
                rows = [intern_row(row) for row in self._rows]
            self._introws = rows
        return rows

    def column_block(self) -> ColumnBlock:
        """The columnar (``array('q')``) snapshot of :meth:`int_rows`.

        Memoized per version: valid exactly while the row set is
        unchanged, the same coherence rule as the memoized statistics and
        the executors' hash tables.
        """
        block = self._block
        if block is None or block.version != self._version:
            block = ColumnBlock.from_rows(self.arity, self.int_rows(), self._version)
            self._block = block
        return block

    def _index_for(self, column: int) -> dict[Constant, dict[Row, None]]:
        if column not in self._indexes:
            index: dict[Constant, dict[Row, None]] = {}
            for row in self._rows:
                index.setdefault(row[column], {})[row] = None
            self._indexes[column] = index
        return self._indexes[column]

    def lookup(self, pattern: Sequence[Term | None]) -> Iterator[Row]:
        """Rows matching a pattern of constants and wildcards.

        *pattern* has one entry per column: a :class:`Constant` pins the
        column, a variable or ``None`` leaves it free.  The most selective
        bound column drives an index probe; remaining bound columns filter.
        """
        if len(pattern) != self.arity:
            raise ArityError(f"pattern arity {len(pattern)} != relation arity {self.arity}")
        bound = [
            (i, term)
            for i, term in enumerate(pattern)
            if term is not None and is_constant(term)
        ]
        if not bound:
            yield from self._rows
            return
        probe_column, probe_value = bound[0]
        if len(bound) > 1 and self._rows:
            # Prefer the column with the most distinct values (smallest
            # expected bucket).  distinct_count is memoized, so choosing the
            # probe costs no index builds; only the winner's index is
            # materialised below.
            best_count = -1
            for column, value in bound:
                count = self.distinct_count(column)
                if count > best_count:
                    best_count = count
                    probe_column, probe_value = column, value
        candidates = self._index_for(probe_column).get(probe_value, [])  # type: ignore[arg-type]
        rest = [(i, v) for i, v in bound if i != probe_column]
        for row in candidates:
            if all(row[i] == v for i, v in rest):
                yield row

    def row_seq(self) -> list[Row]:
        """Stored rows in insertion order, memoized per version.

        Positionally aligned with :meth:`int_rows` / :meth:`column_block`,
        so a columnar ``select`` index addresses the *stored* constant row
        — no externalization needed.  Treat the list as immutable.
        """
        cached = self._rowseq
        if cached is None or cached[0] != self._version:
            cached = (self._version, list(self._rows))
            self._rowseq = cached
        return cached[1]

    def columnar_lookup(self, pattern: Sequence[Term | None]) -> list[Row] | None:
        """Bulk pattern lookup over the interned columnar mirror.

        The vector-scan alternative to :meth:`lookup` for resolver-style
        callers (the top-down engine): pattern constants are mapped to
        symbol ids, the match runs as one vectorized ``select`` over the
        columnar block, and the hits index straight into the stored row
        sequence — the original ``Constant`` tuples, not re-materialised
        copies.  Returns ``None`` when the scan does not engage (numpy
        backend off, relation below the row floor, or an unbound pattern —
        callers fall back to :meth:`lookup`); a pattern constant the
        process has never interned matches nothing.
        """
        if numpy_backend() is None or len(self._rows) < numpy_min_rows():
            return None
        if len(pattern) != self.arity:
            raise ArityError(f"pattern arity {len(pattern)} != relation arity {self.arity}")
        const_checks = []
        for column, term in enumerate(pattern):
            if term is None or not is_constant(term):
                continue
            sid = SYMBOLS.id_of(term)
            if sid is None:
                return []
            const_checks.append((column, sid))
        if not const_checks:
            return None
        rows = self.row_seq()
        return [rows[i] for i in self.column_block().select(const_checks)]

    def distinct_count(self, column: int) -> int:
        """Number of distinct values in a column.

        O(1) when the column's index exists; otherwise computed once and
        memoized until the next mutation — the planner can ask for
        statistics without forcing an index build.
        """
        if not 0 <= column < self.arity:
            raise ArityError(f"column {column} out of range for arity {self.arity}")
        index = self._indexes.get(column)
        if index is not None:
            return len(index)
        cached = self._stats.get(column)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        count = len({row[column] for row in self._rows})
        self._stats[column] = (self._version, count)
        return count

    def copy(self) -> "Relation":
        """An independent copy (indexes rebuilt lazily)."""
        clone = Relation(self.arity)
        clone._rows = dict(self._rows)
        clone._introws = None  # rebuilt lazily, like the indexes
        return clone

    def freeze(self) -> "Relation":
        """An immutable copy sharing row storage with this relation — O(1).

        The copy takes the *current* ``_rows`` dict, interned mirror, and
        columnar blocks by reference and keeps this relation's version
        number, so caches keyed on ``(relation, version)`` — the view
        cache's dependency fingerprints above all — remain valid across
        the freeze.  This relation is marked shared: its next in-place
        mutation privatizes the storage (see :meth:`_unshare`), leaving
        the frozen copy untouched.  Index buckets and the change journal
        are *not* shared — live mutators update them in place — so the
        frozen copy rebuilds indexes lazily and reports no deltas.

        Frozen copies are safe for concurrent readers without locks:
        every mutator raises, and the remaining lazy memoizations
        (indexes, statistics, columnar blocks) are idempotent rebinds.
        """
        if self._frozen:
            return self
        clone = Relation.__new__(Relation)
        clone.arity = self.arity
        clone._frozen = True
        clone._shared = False
        clone._rows = self._rows
        clone._indexes = {}
        clone._version = self._version
        clone._stats = dict(self._stats)
        clone._journal = deque()
        clone._journal_base = self._version
        clone.journal_resets = self.journal_resets
        clone._introws = self._introws
        clone._block = self._block
        clone._intblock = self._intblock
        clone._rowseq = self._rowseq
        self._shared = True
        return clone

    @property
    def frozen(self) -> bool:
        """Whether this relation belongs to a published snapshot."""
        return self._frozen

    # -- transactions -----------------------------------------------------------------

    def checkpoint(self) -> dict[Row, None]:
        """A snapshot of the row set, for transactional rollback.

        O(rows) shallow dict copy; rows themselves are immutable tuples.
        """
        return dict(self._rows)

    def restore(self, snapshot: dict[Row, None]) -> None:
        """Reset the row set to a :meth:`checkpoint` snapshot.

        Indexes and memoized statistics are dropped (rebuilt lazily) and the
        version is bumped past every mid-transaction value, so external
        caches keyed on ``(relation, version)`` cannot serve stale state.
        """
        self._assert_mutable()
        self._rows = dict(snapshot)
        self._shared = False  # rebinding privatizes the row storage
        self._invalidate_derived()
