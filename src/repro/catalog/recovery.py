"""Staged crash recovery: snapshot + write-ahead-log replay.

Recovery reconstructs a durable knowledge base (see
:mod:`repro.catalog.wal`) as *snapshot plus log tail* through an explicit
state machine::

    inspecting -> loading_snapshot -> replaying_log -> verified
                                                    \\-> failed

Each transition is recorded on the :class:`Recoverer` (and surfaced
through the observability tracer as ``recovery.transition`` events), so an
operator — or the fault-injection harness — can see exactly how far a
recovery got and why it stopped.  The stages:

1. **inspecting** — locate the snapshot and log files; a directory with
   neither is an error (there is nothing to recover).
2. **loading_snapshot** — parse and checksum the snapshot, rebuild the
   base knowledge base from it (missing snapshot: start empty — only a
   crash between directory creation and the initial snapshot leaves that
   shape behind).
3. **replaying_log** — scan the log, truncating a torn tail by checksum
   (a record is dropped whole: commits are single records, so no
   half-applied transaction can survive), then apply every record with an
   LSN past the snapshot in order.
4. **verified** — compare the reconstruction against the final record's
   version stamps (fact/rule/constraint counts and the per-relation row
   vector); a mismatch fails recovery rather than serving a wrong
   database.

Every failure is a :class:`~repro.errors.RecoveryError` carrying the file
path and byte offset, which ``dbk recover`` maps to exit code 2 with a
source-located message (the ``dbk lint`` convention).
"""

from __future__ import annotations

import json
import os
from typing import NoReturn

from repro.errors import CatalogError, RecoveryError, ReproError
from repro.catalog.database import KnowledgeBase
from repro.catalog.wal import (
    DurableLog,
    SNAPSHOT_FORMAT,
    _crc,
    collect_stamps,
)

#: The recovery states, in the order a successful run visits them.
STATES = ("inspecting", "loading_snapshot", "replaying_log", "verified", "failed")


def apply_event(kb: KnowledgeBase, event: list) -> None:
    """Apply one log event to a knowledge base being reconstructed."""
    kind = event[0]
    if kind == "edb":
        _, name, arity, attributes = event
        if not kb.has_predicate(name):
            kb.declare_edb(name, arity, attributes)
    elif kind == "idb":
        _, name, arity, attributes = event
        if not kb.has_predicate(name):
            kb.declare_idb(name, arity, attributes)
    elif kind == "+":
        kb.add_fact(event[1], *event[2])
    elif kind == "-":
        kb.relation(event[1]).delete(tuple(event[2]))
    elif kind == "reload":
        relation = kb.relation(event[1])
        relation.clear()
        for row in event[2]:
            relation.insert(row)
    elif kind == "rule":
        from repro.lang.parser import parse_rule

        kb.add_rule(parse_rule(event[1]))
    elif kind == "constraint":
        from repro.lang.ast import ConstraintStatement
        from repro.lang.parser import parse_statement

        statement = parse_statement(event[1])
        if not isinstance(statement, ConstraintStatement):
            raise CatalogError(f"logged constraint is not a constraint: {event[1]}")
        kb.add_constraint(statement.constraint)
    else:
        raise CatalogError(f"unknown log event kind {kind!r}")


class RecoveryReport:
    """What a :meth:`Recoverer.recover` run did, for humans and machines."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self.kb = kb
        self.states: list[str] = []
        self.snapshot_lsn = 0
        self.records_replayed = 0
        self.events_applied = 0
        self.torn_bytes_dropped = 0
        self.torn_reason: str | None = None
        self.verified = False

    def as_dict(self) -> dict:
        """A JSON-friendly summary (used by ``dbk recover --json``)."""
        return {
            "states": list(self.states),
            "snapshot_lsn": self.snapshot_lsn,
            "records_replayed": self.records_replayed,
            "events_applied": self.events_applied,
            "torn_bytes_dropped": self.torn_bytes_dropped,
            "torn_reason": self.torn_reason,
            "verified": self.verified,
            "facts": self.kb.fact_count(),
            "rules": self.kb.rule_count(),
            "constraints": len(self.kb.constraints()),
        }


class Recoverer:
    """The staged recovery state machine over one durable directory.

    ``tracer`` (any :class:`~repro.obs.trace.Tracer`-shaped object) gets a
    ``recovery.transition`` event per state change; :attr:`state` and
    :attr:`transitions` expose the same trajectory programmatically.
    """

    def __init__(self, directory: str, tracer=None) -> None:
        self.directory = os.path.abspath(directory)
        self.tracer = tracer
        self.state = "inspecting"
        self.transitions: list[str] = []
        self._enter("inspecting")

    def _enter(self, state: str, **details: object) -> None:
        assert state in STATES, state
        self.state = state
        self.transitions.append(state)
        if self.tracer is not None:
            self.tracer.event("recovery.transition", state=state, **details)

    def _fail(
        self, message: str, *, path: str | None = None, offset: int | None = None
    ) -> NoReturn:
        self._enter("failed", reason=message)
        raise RecoveryError(message, path=path, offset=offset, state=self.state)

    def recover(self, repair: bool = True, verify: bool = True) -> RecoveryReport:
        """Reconstruct the knowledge base; returns a :class:`RecoveryReport`.

        ``repair=False`` leaves a torn log tail on disk (the report still
        notes it); ``verify=False`` skips the final stamp check — both are
        for diagnostics only, never for serving traffic.
        """
        log = DurableLog(self.directory)
        try:
            return self._recover(log, repair, verify)
        finally:
            log.close()

    # -- stages -----------------------------------------------------------------------

    def _recover(self, log: DurableLog, repair: bool, verify: bool) -> RecoveryReport:
        if not log.exists():
            self._fail(
                "no durable knowledge base found (neither snapshot nor log)",
                path=self.directory,
            )

        self._enter("loading_snapshot")
        kb, snapshot_lsn, snapshot_stamps = self._load_snapshot(log)
        report = RecoveryReport(kb)
        report.snapshot_lsn = snapshot_lsn

        self._enter("replaying_log")
        records, torn_offset, torn_reason = log.scan()
        if torn_offset is not None:
            report.torn_reason = torn_reason
            if repair:
                report.torn_bytes_dropped = log.truncate_at(torn_offset)
            if torn_offset == 0 and not records and not os.path.exists(
                log.snapshot_path
            ):
                # Nothing intact at all: a corrupt header with no snapshot
                # cannot be distinguished from a foreign file.
                self._fail(torn_reason or "unreadable log", path=log.log_path, offset=0)
        last_stamps = snapshot_stamps
        discipline = kb.enforce_recursion_discipline
        kb.enforce_recursion_discipline = False
        try:
            for record in records:
                if record.lsn <= snapshot_lsn:
                    continue  # superseded by the snapshot (crash mid-truncate)
                try:
                    for event in record.events:
                        apply_event(kb, event)
                except ReproError as error:
                    self._fail(
                        f"log record lsn={record.lsn} does not apply: {error}",
                        path=log.log_path,
                        offset=record.offset,
                    )
                report.records_replayed += 1
                report.events_applied += len(record.events)
                last_stamps = record.stamps
        finally:
            kb.enforce_recursion_discipline = discipline

        if verify:
            self._verify(kb, last_stamps, log)
        report.states = list(self.transitions)
        report.verified = bool(verify)
        return report

    def _load_snapshot(self, log: DurableLog) -> tuple[KnowledgeBase, int, dict]:
        from repro.catalog.persist import kb_from_dict

        path = log.snapshot_path
        if not os.path.exists(path):
            return KnowledgeBase("recovered"), 0, {}
        try:
            with open(path) as handle:
                document = json.load(handle)
        except OSError as error:
            self._fail(f"snapshot unreadable: {error}", path=path)
        except ValueError as error:
            self._fail(f"snapshot is not valid JSON: {error}", path=path)
        if not isinstance(document, dict) or document.get("format") != SNAPSHOT_FORMAT:
            self._fail(
                f"not a {SNAPSHOT_FORMAT} snapshot "
                f"(format={document.get('format')!r})"
                if isinstance(document, dict)
                else f"not a {SNAPSHOT_FORMAT} snapshot",
                path=path,
            )
        payload = json.dumps(
            document.get("kb", {}), sort_keys=True, separators=(",", ":")
        )
        recorded = document.get("crc")
        if recorded is not None and recorded != _crc(payload.encode()):
            self._fail("snapshot payload fails its checksum", path=path)
        try:
            kb = kb_from_dict(document.get("kb", {}))
        except ReproError as error:
            self._fail(f"snapshot does not rebuild: {error}", path=path)
        return kb, int(document.get("wal_lsn", 0)), dict(document.get("stamps", {}))

    def _verify(self, kb: KnowledgeBase, expected: dict, log: DurableLog) -> None:
        if not expected:
            self._enter("verified")
            return
        actual = collect_stamps(kb)
        mismatches = []
        for field in ("facts", "rules", "constraints"):
            if field in expected and actual[field] != expected[field]:
                mismatches.append(
                    f"{field}: recovered {actual[field]} != logged {expected[field]}"
                )
        for name, count in expected.get("relations", {}).items():
            have = actual["relations"].get(name)
            if have != count:
                mismatches.append(f"relation {name}: recovered {have} != logged {count}")
        if mismatches:
            self._fail(
                "recovered state does not match the log's final version "
                "stamps (" + "; ".join(mismatches) + ")",
                path=log.log_path,
            )
        self._enter("verified")
