"""Predicate schemas: the catalog's description of each predicate.

The paper's database keeps three mutually disjoint predicate sets: stored
EDB predicates ``P``, built-in predicates ``R`` and rule-defined IDB
predicates ``S``.  A :class:`PredicateSchema` records a predicate's name,
arity, kind, and (optionally) attribute names for readable output.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.errors import ArityError, SchemaError


class PredicateKind(Enum):
    """Which of the paper's three predicate sets a predicate belongs to."""

    EDB = "edb"
    IDB = "idb"
    BUILTIN = "builtin"


class PredicateSchema:
    """Name, arity, kind and optional attribute names of one predicate."""

    __slots__ = ("name", "arity", "kind", "attributes")

    def __init__(
        self,
        name: str,
        arity: int,
        kind: PredicateKind,
        attributes: Sequence[str] | None = None,
    ) -> None:
        if not name:
            raise SchemaError("predicate name must be non-empty")
        if arity < 0:
            raise SchemaError(f"arity must be non-negative, got {arity}")
        if attributes is not None and len(attributes) != arity:
            raise SchemaError(
                f"predicate {name}: {len(attributes)} attribute names for arity {arity}"
            )
        self.name = name
        self.arity = arity
        self.kind = kind
        self.attributes: tuple[str, ...] | None = (
            tuple(attributes) if attributes is not None else None
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PredicateSchema)
            and self.name == other.name
            and self.arity == other.arity
            and self.kind == other.kind
        )

    def __hash__(self) -> int:
        return hash((self.name, self.arity, self.kind))

    def __repr__(self) -> str:
        return f"PredicateSchema({self.name!r}, {self.arity}, {self.kind.value})"

    def __str__(self) -> str:
        if self.attributes:
            inner = ", ".join(self.attributes)
        else:
            inner = ", ".join(f"arg{i}" for i in range(self.arity))
        return f"{self.name}({inner})"

    def check_arity(self, count: int) -> None:
        """Raise :class:`ArityError` unless *count* equals the arity."""
        if count != self.arity:
            raise ArityError(
                f"predicate {self.name} has arity {self.arity}, used with {count} arguments"
            )
