"""Durable write-ahead log and snapshots for a knowledge base.

Everything in the catalog is in-memory; this module makes it survive a
crash.  A durable knowledge base lives in one directory::

    kbdir/
      wal.log        # append-only change log, one framed record per commit
      snapshot.json  # periodic full dump (save_kb format + log position)

Three layers:

* :class:`DurableLog` — the on-disk log.  Each committed transaction
  appends **one** record: a CRC-framed JSON line carrying the commit's
  events and post-commit version stamps, flushed and fsynced before the
  append returns (fsync-before-ack).  A torn tail — a crash mid-write —
  is detected by checksum on read and truncated by recovery; because a
  commit is a single record, a transaction is either wholly in the log or
  wholly absent, never half-applied.
* snapshots — :meth:`DurableLog.snapshot` writes the full knowledge base
  through the same atomic, fsynced temp-file/``os.replace`` path as
  :func:`~repro.catalog.persist.save_kb`, stamped with the log position
  it covers, then truncates the log; recovery is snapshot + tail replay.
* :class:`Durability` — the binding between a live
  :class:`~repro.catalog.database.KnowledgeBase` and its log.
  :meth:`KBTransaction.commit <repro.catalog.transaction.KBTransaction.commit>`
  calls :meth:`Durability.commit`, which *diffs* the knowledge base
  against the last durable state — new schemas, each touched relation's
  change journal (:meth:`~repro.catalog.relation.Relation.changes_since`,
  the same ``(op, row)`` event shape, extended here with rule, constraint
  and schema events), new rules and constraints — and appends the batch.
  Mutations outside a transaction auto-commit one record each.

Diffing at commit time (rather than hooking every mutation site) means
bulk paths that bypass the journal (``load_interned``, ``clear``,
``restore`` — anything that resets it) degrade gracefully: the relation
is logged wholesale as a ``reload`` event, and when the reload is large
the commit is folded into a fresh snapshot instead.

Entry points: :func:`open_durable` attaches (or recovers) a durable
knowledge base; ``Session(durable=path)`` and ``dbk --durable`` build on
it.  See ``docs/ROBUSTNESS.md`` ("Durability & recovery").
"""

from __future__ import annotations

import json
import os
import zlib
from typing import TYPE_CHECKING, Callable

from repro.errors import WalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.database import KnowledgeBase

#: Format marker on the first line of every log file.
LOG_FORMAT = "repro-wal/1"

#: Format marker inside every snapshot document.
SNAPSHOT_FORMAT = "repro-snap/1"

#: Default log file name inside a durable directory.
LOG_NAME = "wal.log"

#: Default snapshot file name inside a durable directory.
SNAPSHOT_NAME = "snapshot.json"

#: Default number of log records after which :class:`Durability` folds the
#: log into a fresh snapshot.
DEFAULT_SNAPSHOT_EVERY = 256

#: A commit whose ``reload`` events carry more rows than this is written
#: as a snapshot instead of a log record (re-logging a bulk-loaded
#: relation row by row would bloat the log past the snapshot it implies).
RELOAD_SNAPSHOT_THRESHOLD = 10_000


def _crc(payload: bytes) -> str:
    """The 8-hex-digit CRC32 framing every record."""
    return f"{zlib.crc32(payload) & 0xFFFFFFFF:08x}"


class WalRecord:
    """One parsed log record: a committed batch of events plus stamps."""

    __slots__ = ("lsn", "events", "stamps", "offset")

    def __init__(self, lsn: int, events: list, stamps: dict, offset: int) -> None:
        self.lsn = lsn
        self.events = events
        self.stamps = stamps
        self.offset = offset

    def as_dict(self) -> dict:
        """A JSON-friendly rendering (used by ``dbk log``)."""
        return {
            "lsn": self.lsn,
            "offset": self.offset,
            "events": len(self.events),
            "stamps": self.stamps,
        }


class DurableLog:
    """The on-disk write-ahead log and snapshot of one durable directory.

    ``crash_hook`` is the fault-injection seam: when set, it is called
    with a stage name at every durability-critical point (see
    ``tests/faultinject/test_crash_recovery.py``); a hook that raises
    simulates a crash at exactly that stage.  Stages:

    - ``append:before`` — nothing written yet;
    - ``append:mid`` — half the record's bytes written (a torn record);
    - ``append:written`` — all bytes written, not yet fsynced;
    - ``append:synced`` — record durable, ack not yet returned;
    - ``snapshot:staged`` — snapshot temp file written, not yet renamed;
    - ``snapshot:replaced`` — snapshot durable, log not yet truncated.
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        os.makedirs(self.directory, exist_ok=True)
        self.log_path = os.path.join(self.directory, LOG_NAME)
        self.snapshot_path = os.path.join(self.directory, SNAPSHOT_NAME)
        self.crash_hook: Callable[[str], None] | None = None
        self._handle = None
        self.last_lsn = 0
        self.records_since_snapshot = 0
        snapshot_lsn, _ = self.snapshot_header()
        self.last_lsn = snapshot_lsn
        for record in self.records():
            self.last_lsn = max(self.last_lsn, record.lsn)
            self.records_since_snapshot += 1

    # -- log reading ----------------------------------------------------------------

    def exists(self) -> bool:
        """Whether the directory holds any durable state at all."""
        return os.path.exists(self.log_path) or os.path.exists(self.snapshot_path)

    def records(self) -> list[WalRecord]:
        """Every intact record, oldest first; stops at the first torn one.

        Use :meth:`scan` to learn *where* the log tore.
        """
        return self.scan()[0]

    def scan(self) -> tuple[list[WalRecord], int | None, str | None]:
        """Parse the log: ``(records, torn_offset, torn_reason)``.

        ``torn_offset`` is the byte offset of the first record that fails
        its frame (truncated line, checksum mismatch, unparsable body) —
        everything from there on is unreliable, matching standard WAL
        semantics — or ``None`` for a clean log.
        """
        records: list[WalRecord] = []
        if not os.path.exists(self.log_path):
            return records, None, None
        with open(self.log_path, "rb") as handle:
            data = handle.read()
        if not data:
            return records, None, None
        offset = 0
        newline = data.find(b"\n")
        if newline < 0:
            return records, 0, "truncated header"
        header = data[:newline].decode("utf-8", "replace")
        if header != LOG_FORMAT:
            return records, 0, f"not a {LOG_FORMAT} log (header {header!r})"
        offset = newline + 1
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline < 0:
                return records, offset, "truncated record (no terminator)"
            line = data[offset:newline]
            parsed, reason = self._parse_record(line, offset)
            if parsed is None:
                return records, offset, reason
            records.append(parsed)
            offset = newline + 1
        return records, None, None

    @staticmethod
    def _parse_record(line: bytes, offset: int) -> tuple[WalRecord | None, str | None]:
        if b" " not in line:
            return None, "unframed record (no checksum field)"
        frame, body = line.split(b" ", 1)
        if frame.decode("ascii", "replace") != _crc(body):
            return None, "checksum mismatch"
        try:
            payload = json.loads(body)
        except ValueError:
            return None, "unparsable record body"
        if not isinstance(payload, dict) or "lsn" not in payload:
            return None, "record body is not a commit object"
        return (
            WalRecord(
                int(payload["lsn"]),
                list(payload.get("events", ())),
                dict(payload.get("stamps", {})),
                offset,
            ),
            None,
        )

    # -- log writing ----------------------------------------------------------------

    def _hook(self, stage: str) -> None:
        if self.crash_hook is not None:
            self.crash_hook(stage)

    def _open_for_append(self):
        if self._handle is None:
            fresh = not os.path.exists(self.log_path) or (
                os.path.getsize(self.log_path) == 0
            )
            self._handle = open(self.log_path, "ab")
            if fresh:
                self._handle.write(f"{LOG_FORMAT}\n".encode())
                self._handle.flush()
        return self._handle

    def append(self, events: list, stamps: dict) -> int:
        """Durably append one commit; returns its LSN.

        The record is flushed and fsynced before the method returns — an
        ack means the commit survives a crash.  One commit, one record:
        a torn write is dropped whole by recovery, so no reader ever sees
        a half-applied transaction.
        """
        lsn = self.last_lsn + 1
        body = json.dumps(
            {"lsn": lsn, "events": events, "stamps": stamps},
            separators=(",", ":"), sort_keys=True,
        ).encode()
        line = _crc(body).encode() + b" " + body + b"\n"
        handle = self._open_for_append()
        self._hook("append:before")
        half = len(line) // 2
        handle.write(line[:half])
        handle.flush()
        self._hook("append:mid")
        handle.write(line[half:])
        handle.flush()
        self._hook("append:written")
        os.fsync(handle.fileno())
        self._hook("append:synced")
        self.last_lsn = lsn
        self.records_since_snapshot += 1
        return lsn

    def close(self) -> None:
        """Release the append handle (records stay on disk)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def truncate_at(self, offset: int) -> int:
        """Cut the log at *offset* (drop a torn tail); returns bytes dropped.

        The truncation is fsynced: a recovered log never resurrects the
        torn bytes.
        """
        self.close()
        size = os.path.getsize(self.log_path)
        with open(self.log_path, "r+b") as handle:
            handle.truncate(offset)
            handle.flush()
            os.fsync(handle.fileno())
        return size - offset

    # -- snapshots --------------------------------------------------------------------

    def snapshot_header(self) -> tuple[int, dict]:
        """The current snapshot's ``(wal_lsn, stamps)`` — zeros if absent."""
        if not os.path.exists(self.snapshot_path):
            return 0, {}
        try:
            with open(self.snapshot_path) as handle:
                document = json.load(handle)
        except (OSError, ValueError):
            return 0, {}
        if not isinstance(document, dict):
            return 0, {}
        return int(document.get("wal_lsn", 0)), dict(document.get("stamps", {}))

    def snapshot(self, kb: "KnowledgeBase") -> int:
        """Write a full snapshot covering the log so far, then truncate it.

        The snapshot document is the :func:`~repro.catalog.persist.save_kb`
        payload plus the covered LSN, a payload checksum, and the version
        stamps — staged, fsynced, and renamed atomically.  Only after the
        snapshot is durable is the log reset; a crash between the two
        leaves superseded records behind, which recovery skips by LSN.
        """
        from repro.catalog.persist import fsync_directory, kb_to_dict

        payload = json.dumps(kb_to_dict(kb), sort_keys=True, separators=(",", ":"))
        document = {
            "format": SNAPSHOT_FORMAT,
            "wal_lsn": self.last_lsn,
            "crc": _crc(payload.encode()),
            "stamps": collect_stamps(kb),
            "kb": json.loads(payload),
        }
        staged = self.snapshot_path + ".tmp"
        try:
            with open(staged, "w") as handle:
                json.dump(document, handle, sort_keys=True)
                handle.flush()
                os.fsync(handle.fileno())
            self._hook("snapshot:staged")
            os.replace(staged, self.snapshot_path)
            fsync_directory(self.directory)
        except BaseException:
            try:
                os.unlink(staged)
            except OSError:
                pass
            raise
        self._hook("snapshot:replaced")
        self.close()
        with open(self.log_path, "wb") as handle:
            handle.write(f"{LOG_FORMAT}\n".encode())
            handle.flush()
            os.fsync(handle.fileno())
        self.records_since_snapshot = 0
        return self.last_lsn


def collect_stamps(kb: "KnowledgeBase") -> dict:
    """Post-commit version stamps: the log's consistency fingerprint.

    Replay re-executes mutations, so raw :attr:`Relation.version` counters
    are not reproducible (rollbacks bump them without being logged); the
    verifiable vector is the per-relation row counts plus catalog totals.
    The monotone ``rules_version``/``constraints_version`` counters ride
    along as diagnostics.
    """
    return {
        "facts": kb.fact_count(),
        "rules": kb.rule_count(),
        "constraints": len(kb.constraints()),
        "relations": {name: len(kb.relation(name)) for name in kb.edb_predicates()},
        "rules_version": kb.rules_version,
        "constraints_version": kb.constraints_version,
    }


class Durability:
    """Binds a live knowledge base to its :class:`DurableLog`.

    The binding keeps a mirror of the *durable* state — per-relation
    versions, schema names, rule and constraint counts as of the last
    acknowledged record — and turns the gap between mirror and live state
    into an event batch at each commit.  See the module docstring for why
    diff-at-commit is the right capture point.
    """

    def __init__(
        self,
        log: DurableLog,
        kb: "KnowledgeBase",
        snapshot_every: int | None = DEFAULT_SNAPSHOT_EVERY,
    ) -> None:
        self.log = log
        self.kb = kb
        #: Fold the log into a snapshot after this many records
        #: (``None`` disables automatic snapshots).
        self.snapshot_every = snapshot_every
        self._versions: dict[str, int] = {}
        self._schemas: set[str] = set()
        self._rule_count = 0
        self._constraint_count = 0
        self.refresh_mirror()

    def refresh_mirror(self) -> None:
        """Declare the live state durable (after a snapshot or recovery)."""
        kb = self.kb
        self._versions = {
            name: kb.relation(name).version for name in kb.edb_predicates()
        }
        self._schemas = set(kb._schemas)
        self._rule_count = kb.rule_count()
        self._constraint_count = len(kb.constraints())

    def collect(self) -> tuple[list, int]:
        """The events between the durable mirror and the live state.

        Returns ``(events, reload_rows)`` where ``reload_rows`` counts
        rows carried by wholesale ``reload`` events (journal gaps), so
        :meth:`commit` can fold oversized batches into a snapshot.
        """
        kb = self.kb
        events: list = []
        for name, schema in kb._schemas.items():
            if name in self._schemas:
                continue
            kind = "edb" if kb.is_edb(name) else "idb"
            attributes = list(schema.attributes) if schema.attributes else None
            events.append([kind, name, schema.arity, attributes])
        reload_rows = 0
        for name in kb.edb_predicates():
            relation = kb.relation(name)
            # A relation declared this commit starts at version 0 with its
            # whole history in the journal, so the default base replays it
            # row by row in insertion order.
            durable = self._versions.get(name, 0)
            if durable == relation.version:
                continue
            changes = relation.changes_since(durable)
            if changes is None:
                rows = [[c.value for c in row] for row in relation.rows()]
                reload_rows += len(rows)
                events.append(["reload", name, rows])
            else:
                for op, row in changes:
                    events.append([op, name, [c.value for c in row]])
        if kb.rule_count() < self._rule_count or len(kb.constraints()) < self._constraint_count:
            raise WalError(
                "knowledge base shrank below its durable mirror; "
                "snapshot required (rules/constraints are append-only in the log)"
            )
        for rule in kb.rules()[self._rule_count:]:
            events.append(["rule", str(rule)])
        for constraint in kb.constraints()[self._constraint_count:]:
            events.append(["constraint", str(constraint)])
        return events, reload_rows

    def commit(self) -> int | None:
        """Make everything committed in memory durable; returns the LSN.

        Called by :meth:`KBTransaction.commit
        <repro.catalog.transaction.KBTransaction.commit>` and by each
        mutation outside a transaction.  No-op (``None``) when the live
        state already matches the mirror.  The append fsyncs before
        returning — a caller that gets an LSN back holds a durable commit;
        a caller that sees an exception must treat the commit as not
        durable (the in-memory mutation stands, and the next successful
        commit re-captures it).
        """
        try:
            events, reload_rows = self.collect()
        except WalError:
            self.snapshot()
            return self.log.last_lsn
        if not events:
            return None
        if reload_rows > RELOAD_SNAPSHOT_THRESHOLD:
            # The batch would re-log a bulk load row by row; a snapshot is
            # both smaller and faster to recover from.
            self.snapshot()
            return self.log.last_lsn
        lsn = self.log.append(events, collect_stamps(self.kb))
        self.refresh_mirror()
        if (
            self.snapshot_every is not None
            and self.log.records_since_snapshot >= self.snapshot_every
        ):
            self.snapshot()
        return lsn

    def snapshot(self) -> int:
        """Fold the log into a fresh snapshot of the live state."""
        lsn = self.log.snapshot(self.kb)
        self.refresh_mirror()
        return lsn


def open_durable(
    directory: str,
    kb: "KnowledgeBase | None" = None,
    snapshot_every: int | None = DEFAULT_SNAPSHOT_EVERY,
    tracer=None,
) -> "KnowledgeBase":
    """Open (recovering) or create a durable knowledge base in *directory*.

    With existing durable state, *kb* must be ``None``: the knowledge base
    is reconstructed by staged recovery (snapshot + log replay, torn tail
    truncated, result verified) and re-attached.  Otherwise the given (or
    a fresh) knowledge base is attached and an initial snapshot written.
    """
    from repro.catalog.database import KnowledgeBase
    from repro.catalog.recovery import Recoverer

    log = DurableLog(directory)
    if log.exists() and (os.path.exists(log.snapshot_path) or log.records()):
        if kb is not None:
            raise WalError(
                f"{directory} already holds a durable knowledge base; "
                "open it without passing kb="
            )
        log.close()
        report = Recoverer(directory, tracer=tracer).recover()
        recovered = report.kb
        durability = Durability(
            DurableLog(directory), recovered, snapshot_every=snapshot_every
        )
        recovered._durability = durability
        return recovered
    target = kb if kb is not None else KnowledgeBase("durable")
    durability = Durability(log, target, snapshot_every=snapshot_every)
    durability.snapshot()
    target._durability = durability
    return target
