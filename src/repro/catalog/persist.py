"""Persistence: save/load knowledge bases, CSV import/export.

The on-disk format is a single JSON document: EDB schemas with their rows,
and rules/constraints as source text (the language is the canonical
serialisation of knowledge — it round-trips through the parser).  CSV
import/export moves single relations in and out of ordinary tabular files.

Every operation here is **atomic**: writers stage the full output in a
temporary file and :func:`os.replace` it over the destination (a crash or
mid-write error never leaves a truncated file), and :func:`import_csv`
parses and validates the whole file before inserting under a
:meth:`~repro.catalog.database.KnowledgeBase.transaction` (a bad row — or a
resource-guard trip — leaves the knowledge base untouched).
"""

from __future__ import annotations

import csv
import io
import json
import os
import tempfile
from typing import Sequence

from repro.errors import CatalogError
from repro.catalog.database import KnowledgeBase
from repro.lang.parser import parse_rule, parse_statement
from repro.lang.ast import ConstraintStatement

#: Format marker written into every dump.
FORMAT = "repro-kb/1"


def kb_to_dict(kb: KnowledgeBase) -> dict:
    """A JSON-ready dictionary capturing the whole knowledge base."""
    relations = {}
    for name in kb.edb_predicates():
        schema = kb.schema(name)
        relations[name] = {
            "arity": schema.arity,
            "attributes": list(schema.attributes) if schema.attributes else None,
            "rows": [[c.value for c in row] for row in kb.facts(name)],
        }
    return {
        "format": FORMAT,
        "name": kb.name,
        "edb": relations,
        "rules": [str(rule) for rule in kb.rules()],
        "constraints": [str(constraint) for constraint in kb.constraints()],
    }


def kb_from_dict(data: dict) -> KnowledgeBase:
    """Rebuild a knowledge base from :func:`kb_to_dict` output."""
    if data.get("format") != FORMAT:
        raise CatalogError(f"not a {FORMAT} document (format={data.get('format')!r})")
    kb = KnowledgeBase(data.get("name", "loaded"))
    for name, relation in data.get("edb", {}).items():
        kb.declare_edb(name, relation["arity"], relation.get("attributes"))
        kb.add_facts(name, [tuple(row) for row in relation.get("rows", ())])
    kb.add_rules(parse_rule(text) for text in data.get("rules", ()))
    for text in data.get("constraints", ()):
        statement = parse_statement(text)
        if not isinstance(statement, ConstraintStatement):
            raise CatalogError(f"not a constraint: {text}")
        kb.add_constraint(statement.constraint)
    return kb


def fsync_directory(directory: str) -> None:
    """Flush a directory entry to disk, where the platform supports it.

    After ``os.replace`` the *rename* itself lives in the directory inode;
    without this a power loss can forget the new name (and, with the old
    file already unlinked, drop both old and new contents).  Platforms
    that cannot fsync a directory (or deny it) are ignored — the rename
    is still atomic, just not yet durable.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _atomic_write(path: str, text: str) -> None:
    """Write *text* to *path* all-or-nothing and durably.

    The full output is staged in a temporary file, flushed and fsynced,
    then ``os.replace``d over the destination, and finally the parent
    directory is fsynced so the rename survives power loss.  A failure at
    any stage removes the staged file and leaves the destination intact.
    """
    directory = os.path.dirname(os.path.abspath(path)) or "."
    fd, staged = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", newline="") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(staged, path)
    except BaseException:
        try:
            os.unlink(staged)
        except OSError:
            pass
        raise
    fsync_directory(directory)


def save_kb(kb: KnowledgeBase, path: str) -> None:
    """Write the knowledge base to *path* as JSON, atomically.

    The document is serialised in full first and replaces any previous file
    in one step, so a failed save never corrupts an existing dump.
    """
    _atomic_write(path, json.dumps(kb_to_dict(kb), indent=1))


def load_kb(path: str) -> KnowledgeBase:
    """Read a knowledge base written by :func:`save_kb`."""
    with open(path) as handle:
        return kb_from_dict(json.load(handle))


def _coerce_cell(cell: str) -> object:
    """CSV cells: numbers become numbers, everything else stays a string."""
    try:
        return int(cell)
    except ValueError:
        pass
    try:
        return float(cell)
    except ValueError:
        pass
    return cell


def import_csv(
    kb: KnowledgeBase,
    predicate: str,
    path: str,
    header: bool = True,
    delimiter: str = ",",
    guard=None,
) -> int:
    """Load rows of one EDB relation from a CSV file, atomically.

    With ``header=True`` the first row supplies attribute names (used when
    the predicate is not yet declared).  Returns the number of new facts.

    The whole file is parsed and validated (column counts, cell coercion)
    *before* any insertion, and the insertions run inside a
    :meth:`~repro.catalog.database.KnowledgeBase.transaction`: a malformed
    row, a :class:`~repro.engine.guard.ResourceGuard` trip, or any other
    mid-import failure leaves the knowledge base exactly as it was.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        rows = list(reader)
    if not rows:
        return 0
    attributes: Sequence[str] | None = None
    if header:
        attributes, rows = rows[0], rows[1:]
    if not rows:
        return 0
    arity = len(rows[0])
    coerced: list[list[object]] = []
    for row in rows:
        if len(row) != arity:
            raise CatalogError(
                f"{path}: expected {arity} columns, got {len(row)}: {row!r}"
            )
        coerced.append([_coerce_cell(cell) for cell in row])
    count = 0
    with kb.transaction():
        if not kb.has_predicate(predicate):
            kb.declare_edb(predicate, arity, attributes)
        for values in coerced:
            if guard is not None:
                guard.tick()
            if kb.add_fact(predicate, *values):
                count += 1
    return count


def export_csv(
    kb: KnowledgeBase, predicate: str, path: str, header: bool = True
) -> int:
    """Write one EDB relation to a CSV file, atomically; returns the row count."""
    schema = kb.schema(predicate)
    rows = kb.facts(predicate)
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    if header:
        writer.writerow(
            schema.attributes
            if schema.attributes
            else [f"arg{i}" for i in range(schema.arity)]
        )
    for row in rows:
        writer.writerow([c.value for c in row])
    _atomic_write(path, buffer.getvalue())
    return len(rows)
