"""Loading knowledge bases from definition files.

A definition file mixes facts, rules and integrity constraints in the
surface language (``%`` comments allowed)::

    % facts
    student(ann, math, 3.9).
    % rules
    honor(X) <- student(X, Y, Z) and (Z > 3.7).
    % constraints
    not (honor(X) and student(X, Y, Z) and (Z < 3.0)).

Ground bodiless clauses are stored as EDB facts (their predicate is
declared on first use); everything else becomes IDB rules/constraints.

Loading can run the static analyzer (:mod:`repro.analysis`) first, under a
``lint=`` policy:

* ``"off"`` (default here) — no analysis;
* ``"warn"`` — analyze and collect the findings (pass a list as
  ``diagnostics=`` to receive them) but load regardless;
* ``"strict"`` — reject the program with :class:`LintError` when the
  analyzer reports any *error*; nothing is loaded.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CatalogError, LintError
from repro.catalog.database import KnowledgeBase
from repro.lang.ast import ConstraintStatement, Program, RuleStatement
from repro.lang.parser import parse_program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.diagnostics import AnalysisReport, Diagnostic

#: The accepted lint policies.
LINT_POLICIES = ("off", "warn", "strict")


def lint_policy_check(program: Program, lint: str) -> "AnalysisReport | None":
    """Analyze *program* under a lint policy; raise on ``strict`` errors.

    Returns the report (``None`` when the policy is ``"off"``) so callers
    can surface warnings however they like.
    """
    if lint not in LINT_POLICIES:
        raise CatalogError(
            f"unknown lint policy {lint!r}: expected one of {LINT_POLICIES}"
        )
    if lint == "off":
        return None
    from repro.analysis.analyzer import analyze  # local: lazy, heavy

    report = analyze(program)
    if lint == "strict" and report.errors:
        details = "; ".join(
            f"{d.code} {d.message}"
            + (f" (line {d.span.line})" if d.span is not None else "")
            for d in report.errors
        )
        raise LintError(
            f"program rejected by strict lint: {details}", report=report
        )
    return report


def load_program(
    kb: KnowledgeBase,
    source: str,
    *,
    lint: str = "off",
    diagnostics: "list[Diagnostic] | None" = None,
) -> int:
    """Load definitions from *source* into *kb*, atomically; returns the count.

    The whole program lands or none of it does: a parse error, an invalid
    rule (arity clash, recursion-discipline violation), a strict-lint
    rejection or any other failure part-way through restores *kb* to its
    pre-load state.  Under ``lint="warn"`` the findings are appended to the
    *diagnostics* list when one is given.
    """
    program = parse_program(source)
    report = lint_policy_check(program, lint)
    if report is not None and diagnostics is not None:
        diagnostics.extend(report)
    count = 0
    with kb.transaction():
        for statement in program.statements:
            if isinstance(statement, RuleStatement):
                rule = statement.rule
                if rule.is_fact():
                    predicate = rule.head.predicate
                    if not kb.has_predicate(predicate):
                        kb.declare_edb(predicate, rule.head.arity)
                    kb.add_fact(predicate, *rule.head.args)
                else:
                    kb.add_rule(rule)
                count += 1
            elif isinstance(statement, ConstraintStatement):
                kb.add_constraint(statement.constraint)
                count += 1
            else:
                raise CatalogError(
                    f"definition files may not contain queries: {statement}"
                )
    return count


def load_file(
    kb: KnowledgeBase,
    path: str,
    *,
    lint: str = "off",
    diagnostics: "list[Diagnostic] | None" = None,
) -> int:
    """Load definitions from a file into *kb*; returns the count."""
    with open(path) as handle:
        return load_program(
            kb, handle.read(), lint=lint, diagnostics=diagnostics
        )


def kb_from_program(
    source: str, name: str = "loaded", *, lint: str = "off"
) -> KnowledgeBase:
    """Build a fresh knowledge base from definition text."""
    kb = KnowledgeBase(name)
    load_program(kb, source, lint=lint)
    return kb
