"""Loading knowledge bases from definition files.

A definition file mixes facts, rules and integrity constraints in the
surface language (``%`` comments allowed)::

    % facts
    student(ann, math, 3.9).
    % rules
    honor(X) <- student(X, Y, Z) and (Z > 3.7).
    % constraints
    not (honor(X) and student(X, Y, Z) and (Z < 3.0)).

Ground bodiless clauses are stored as EDB facts (their predicate is
declared on first use); everything else becomes IDB rules/constraints.
"""

from __future__ import annotations

from repro.errors import CatalogError
from repro.catalog.database import KnowledgeBase
from repro.lang.ast import ConstraintStatement, RuleStatement
from repro.lang.parser import parse_program


def load_program(kb: KnowledgeBase, source: str) -> int:
    """Load definitions from *source* into *kb*, atomically; returns the count.

    The whole program lands or none of it does: a parse error, an invalid
    rule (arity clash, recursion-discipline violation) or any other failure
    part-way through restores *kb* to its pre-load state.
    """
    program = parse_program(source)
    count = 0
    with kb.transaction():
        for statement in program.statements:
            if isinstance(statement, RuleStatement):
                rule = statement.rule
                if rule.is_fact():
                    predicate = rule.head.predicate
                    if not kb.has_predicate(predicate):
                        kb.declare_edb(predicate, rule.head.arity)
                    kb.add_fact(predicate, *rule.head.args)
                else:
                    kb.add_rule(rule)
                count += 1
            elif isinstance(statement, ConstraintStatement):
                kb.add_constraint(statement.constraint)
                count += 1
            else:
                raise CatalogError(
                    f"definition files may not contain queries: {statement}"
                )
    return count


def load_file(kb: KnowledgeBase, path: str) -> int:
    """Load definitions from a file into *kb*; returns the count."""
    with open(path) as handle:
        return load_program(kb, handle.read())


def kb_from_program(source: str, name: str = "loaded") -> KnowledgeBase:
    """Build a fresh knowledge base from definition text."""
    kb = KnowledgeBase(name)
    load_program(kb, source)
    return kb
