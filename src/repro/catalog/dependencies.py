"""Predicate dependency analysis: recursion detection and evaluation order.

The paper (section 2.1): an IDB predicate ``q`` defined by a rule
``q <- p_1 and ... and p_n`` is *directly dependent* on each ``p_i``;
*dependent* is the transitive closure; a rule is *recursive* when its head
and some body predicate are mutually dependent; a predicate is recursive when
it heads at least one recursive rule.

:class:`DependencyGraph` computes all of this from a rule list, plus the
strongly connected components and a topological ordering of the component
DAG, which the semi-naive engine uses as evaluation strata.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.logic.clauses import Rule


class DependencyGraph:
    """Dependency structure of an IDB rule set."""

    def __init__(self, rules: Iterable[Rule]) -> None:
        self._rules: list[Rule] = list(rules)
        self._direct: dict[str, set[str]] = {}
        self._negative_edges: set[tuple[str, str]] = set()
        for rule in self._rules:
            deps = self._direct.setdefault(rule.head.predicate, set())
            for body_atom in rule.body:
                if not body_atom.is_comparison():
                    deps.add(body_atom.predicate)
            for negated_atom in rule.negated:
                deps.add(negated_atom.predicate)
                self._negative_edges.add((rule.head.predicate, negated_atom.predicate))
        self._components = self._strongly_connected_components()
        self._component_of: dict[str, int] = {}
        for index, component in enumerate(self._components):
            for predicate in component:
                self._component_of[predicate] = index
        self._reachable_cache: dict[str, frozenset[str]] = {}

    # -- basic relations -------------------------------------------------------

    def direct_dependencies(self, predicate: str) -> frozenset[str]:
        """Predicates that *predicate* is directly dependent on."""
        return frozenset(self._direct.get(predicate, ()))

    def dependencies(self, predicate: str) -> frozenset[str]:
        """All predicates that *predicate* depends on (transitively)."""
        if predicate in self._reachable_cache:
            return self._reachable_cache[predicate]
        seen: set[str] = set()
        stack = list(self._direct.get(predicate, ()))
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._direct.get(current, ()))
        result = frozenset(seen)
        self._reachable_cache[predicate] = result
        return result

    def depends_on(self, dependent: str, dependee: str) -> bool:
        """Whether *dependent* depends (transitively) on *dependee*."""
        return dependee in self.dependencies(dependent)

    def mutually_dependent(self, left: str, right: str) -> bool:
        """Whether each of the two predicates depends on the other."""
        return self.depends_on(left, right) and self.depends_on(right, left)

    # -- recursion ----------------------------------------------------------------

    def is_recursive_rule(self, rule: Rule) -> bool:
        """Whether the rule's head and some body predicate are mutually dependent."""
        head = rule.head.predicate
        for body_atom in (*rule.body, *rule.negated):
            if body_atom.is_comparison():
                continue
            predicate = body_atom.predicate
            if predicate == head:
                return True
            if self.mutually_dependent(head, predicate):
                return True
        return False

    def is_recursive_predicate(self, predicate: str) -> bool:
        """Whether the predicate heads at least one recursive rule."""
        return any(
            rule.head.predicate == predicate and self.is_recursive_rule(rule)
            for rule in self._rules
        )

    def recursive_predicates(self) -> frozenset[str]:
        """All recursive predicates."""
        return frozenset(
            rule.head.predicate for rule in self._rules if self.is_recursive_rule(rule)
        )

    def depends_on_recursion(self, predicate: str) -> bool:
        """Whether the predicate is recursive or depends on a recursive one.

        This is the precondition Algorithm 1 requires to be *false*.
        """
        if self.is_recursive_predicate(predicate):
            return True
        recursive = self.recursive_predicates()
        return bool(self.dependencies(predicate) & recursive)

    def recursion_class(self, predicate: str) -> frozenset[str]:
        """Predicates mutually recursive with *predicate* (its SCC)."""
        index = self._component_of.get(predicate)
        if index is None:
            return frozenset({predicate})
        return frozenset(self._components[index])

    # -- negation / stratification ---------------------------------------------------

    def negation_violations(self) -> list[tuple[str, str]]:
        """Negative edges inside a recursion class (recursion through negation).

        A non-empty result means the rule set has no stratified model; the
        engines refuse to evaluate it.
        """
        return sorted(
            (head, negated)
            for head, negated in self._negative_edges
            if self._component_of.get(head) is not None
            and self._component_of.get(head) == self._component_of.get(negated)
        )

    def is_stratified(self) -> bool:
        """Whether no predicate depends negatively on its own recursion class."""
        return not self.negation_violations()

    # -- stratification (evaluation order) -------------------------------------------

    def _strongly_connected_components(self) -> list[list[str]]:
        """Tarjan's SCCs over the direct-dependency graph (iterative)."""
        nodes = sorted(
            set(self._direct)
            | {dep for deps in self._direct.values() for dep in deps}
        )
        index: dict[str, int] = {}
        lowlink: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        components: list[list[str]] = []
        counter = [0]

        def strongconnect(start: str) -> None:
            work: list[tuple[str, Iterable[str]]] = [
                (start, iter(sorted(self._direct.get(start, ()))))
            ]
            index[start] = lowlink[start] = counter[0]
            counter[0] += 1
            stack.append(start)
            on_stack.add(start)
            while work:
                node, successors = work[-1]
                advanced = False
                for succ in successors:
                    if succ not in index:
                        index[succ] = lowlink[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(sorted(self._direct.get(succ, ())))))
                        advanced = True
                        break
                    if succ in on_stack:
                        lowlink[node] = min(lowlink[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    components.append(component)

        for node in nodes:
            if node not in index:
                strongconnect(node)
        return components

    def evaluation_strata(self, idb_predicates: set[str]) -> list[list[str]]:
        """IDB predicates grouped into bottom-up evaluation strata.

        Components are emitted in dependency order (Tarjan already yields a
        reverse topological order of the condensation), restricted to IDB
        predicates; mutually recursive predicates share a stratum.
        """
        strata: list[list[str]] = []
        for component in self._components:
            members = sorted(p for p in component if p in idb_predicates)
            if members:
                strata.append(members)
        return strata


def dependency_graph(rules: Sequence[Rule]) -> DependencyGraph:
    """Convenience constructor."""
    return DependencyGraph(rules)
