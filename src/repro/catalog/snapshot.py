"""Published, immutable knowledge-base snapshots (MVCC reads).

The concurrency contract of the server (:mod:`repro.server`): writers
mutate the one *live* :class:`~repro.catalog.database.KnowledgeBase`
through ordinary transactions, and each commit *publishes* an immutable
:class:`KBSnapshot` — a frozen copy-on-write clone whose relations share
row storage with the live catalog (:meth:`Relation.freeze
<repro.catalog.relation.Relation.freeze>`).  Readers pin the snapshot
current at request start and evaluate against it without locks: the
frozen clone can never change, so a reader observes either all of a
commit or none of it, never a half-applied delta.

Version counters survive freezing unchanged, so the view cache's
dependency fingerprints (:meth:`ViewCache.dependency_fingerprint
<repro.engine.viewcache.ViewCache.dependency_fingerprint>`) mean the
same thing on a snapshot as on the live catalog — "the view cache keys
on the pinned fingerprint unchanged".
"""

from __future__ import annotations

import hashlib

from repro.catalog.database import KnowledgeBase
from repro.catalog.relation import Relation
from repro.errors import CatalogError

#: A knowledge base's full dependency state: the rules/catalog version,
#: every EDB relation's ``(name, version)`` pair (sorted), and the
#: constraint-set version.  Equal fingerprints mean equal derivable
#: content, the same contract the view cache relies on.
Fingerprint = tuple[int, tuple[tuple[str, int], ...], int]


def kb_fingerprint(kb: KnowledgeBase) -> Fingerprint:
    """The version-vector fingerprint of *kb*'s current state."""
    relations = tuple(
        sorted((name, kb.relation(name).version) for name in kb.edb_predicates())
    )
    return (kb.rules_version, relations, kb.constraints_version)


def fingerprint_token(fingerprint: Fingerprint) -> str:
    """A short stable hex token naming a fingerprint on the wire.

    Every server response carries the token of the snapshot it was
    evaluated against, so a response is attributable to exactly one
    published state without shipping the whole version vector.
    """
    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()[:12]


class KBSnapshot:
    """One published, immutable version of a knowledge base.

    Attributes
    ----------
    kb:
        The frozen clone.  Safe for any number of concurrent reader
        threads: every mutator raises, and the remaining lazy
        memoizations (indexes, columnar blocks, the dependency graph's
        reachability cache) are idempotent.
    snapshot_id:
        Monotone publication counter.  Clients observing ids go
        backwards would be seeing time travel; the isolation property
        suite asserts they never do.
    fingerprint:
        The version vector the clone was frozen at (see
        :func:`kb_fingerprint`).
    token:
        Short hex digest of the fingerprint, quoted in every server
        response (see :func:`fingerprint_token`).
    """

    __slots__ = ("kb", "snapshot_id", "fingerprint", "token", "_sources")

    def __init__(
        self,
        kb: KnowledgeBase,
        snapshot_id: int,
        fingerprint: Fingerprint,
        sources: dict[str, tuple[Relation, Relation]],
    ) -> None:
        self.kb = kb
        self.snapshot_id = snapshot_id
        self.fingerprint = fingerprint
        self.token = fingerprint_token(fingerprint)
        #: name -> (live relation, frozen copy): which live object each
        #: frozen relation came from, so the next publication can reuse
        #: the copy (and its lazily built indexes) when the live relation
        #: is the same object at the same version.
        self._sources = sources

    def __repr__(self) -> str:
        return f"KBSnapshot(id={self.snapshot_id}, token={self.token!r})"


def publish_snapshot(
    kb: KnowledgeBase,
    previous: KBSnapshot | None = None,
    snapshot_id: int | None = None,
) -> KBSnapshot:
    """Freeze *kb*'s current state into a published snapshot.

    O(#relations) pointer work: each relation freezes by reference
    (:meth:`Relation.freeze <repro.catalog.relation.Relation.freeze>`),
    and relations unchanged since *previous* — same live object, same
    version — reuse the previous snapshot's frozen copy outright, keeping
    its lazily built indexes warm across publications.  A commit that
    changed nothing (equal fingerprint) returns *previous* itself, so
    pooled reader sessions keyed on ``snapshot_id`` stay warm.

    Must be called from the writer (no concurrent mutation): the server
    serializes publication under its write lock.
    """
    if kb.frozen:
        raise CatalogError("cannot publish a snapshot of a snapshot")
    if kb._tx is not None:
        raise CatalogError("cannot publish a snapshot inside an open transaction")
    fingerprint = kb_fingerprint(kb)
    if previous is not None and previous.fingerprint == fingerprint:
        return previous
    sources: dict[str, tuple[Relation, Relation]] = {}
    relations: dict[str, Relation] = {}
    previous_sources = previous._sources if previous is not None else {}
    for name, live in kb._relations.items():
        reusable = previous_sources.get(name)
        if (
            reusable is not None
            and reusable[0] is live
            and reusable[1].version == live.version
        ):
            frozen = reusable[1]
        else:
            frozen = live.freeze()
        sources[name] = (live, frozen)
        relations[name] = frozen
    clone = KnowledgeBase(
        kb.name, enforce_recursion_discipline=kb.enforce_recursion_discipline
    )
    clone._schemas = dict(kb._schemas)
    clone._relations = relations
    clone._rules = list(kb._rules)
    clone._rules_by_head = {h: list(rs) for h, rs in kb._rules_by_head.items()}
    clone._constraints = list(kb._constraints)
    # The graph is derived purely from the (copied) rule list; the live
    # side only ever rebinds it, and its reachability memo is idempotent,
    # so sharing a built instance is safe and keeps snapshot reads warm.
    clone._graph = kb._graph
    clone._rules_version = kb._rules_version
    clone._constraints_version = kb._constraints_version
    clone._frozen = True
    next_id = (
        snapshot_id
        if snapshot_id is not None
        else (previous.snapshot_id + 1 if previous is not None else 0)
    )
    return KBSnapshot(clone, next_id, fingerprint, sources)
