"""Columnar storage layout over interned symbol ids.

A :class:`ColumnBlock` is the column-major mirror of a relation's row set:
one ``array('q')`` (signed 64-bit) per column, holding symbol ids from the
process-wide :data:`~repro.catalog.symbols.SYMBOLS` table.  Blocks are
immutable snapshots stamped with the relation version they were built
from; :meth:`Relation.column_block` memoizes one block per version.

An optional numpy backend vectorizes constant-equality scans and, through
:mod:`repro.engine.kernels`, the whole probe pipeline.  It engages only
when *all* of the following hold:

* the ``REPRO_COLUMNAR_BACKEND`` environment variable is ``numpy``
  (feature flag, off by default),
* numpy is importable (the import is gated — no hard dependency),
* for per-block scans, the block has at least :func:`numpy_min_rows` rows
  (below that the array round-trip costs more than the python loop it
  replaces).  The floor defaults to :data:`NUMPY_MIN_ROWS` and is tunable
  via the ``REPRO_NUMPY_MIN_ROWS`` environment variable (a non-negative
  integer; benchmarks and tests set ``0``/``1`` to force the vector path
  on small fixtures).

Both environment variables are read **once** per process, on first use;
the parsed decision is cached so hot loops never touch ``os.environ``.
Tests and benchmarks switch modes with :func:`configure_backend` /
:func:`backend_override` instead of mutating the environment mid-process.

``array('q')`` supports the buffer protocol, so ``numpy.frombuffer`` wraps
the existing storage without copying; :meth:`ColumnBlock.column_view`
memoizes one such view per column so repeated probes don't re-wrap
storage.
"""

from __future__ import annotations

import os
from array import array
from contextlib import contextmanager
from typing import Iterable, Sequence

from repro.errors import CatalogError

__all__ = [
    "ColumnBlock",
    "NUMPY_MIN_ROWS",
    "backend_override",
    "configure_backend",
    "numpy_backend",
    "numpy_min_rows",
    "reset_backend",
]

#: Default row floor: below this many rows the vectorized scan is not
#: worth the conversion.  Override per process with ``REPRO_NUMPY_MIN_ROWS``
#: or per call site with :func:`configure_backend`.
NUMPY_MIN_ROWS = 1024


class _BackendConfig:
    """The parsed, per-process columnar backend decision."""

    __slots__ = ("numpy", "min_rows")

    def __init__(self, numpy, min_rows: int) -> None:
        self.numpy = numpy
        self.min_rows = min_rows


_config: _BackendConfig | None = None


def _import_numpy():
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy ships in CI images
        return None
    return numpy


def _parse_min_rows(raw: str) -> int:
    try:
        value = int(raw)
    except ValueError:
        value = -1
    if value < 0:
        raise CatalogError(
            f"REPRO_NUMPY_MIN_ROWS must be a non-negative integer, got {raw!r}"
        )
    return value


def _config_from_env() -> _BackendConfig:
    flag = os.environ.get("REPRO_COLUMNAR_BACKEND", "").lower()
    numpy = _import_numpy() if flag == "numpy" else None
    raw = os.environ.get("REPRO_NUMPY_MIN_ROWS")
    min_rows = NUMPY_MIN_ROWS if raw is None else _parse_min_rows(raw)
    return _BackendConfig(numpy, min_rows)


def _current() -> _BackendConfig:
    global _config
    if _config is None:
        _config = _config_from_env()
    return _config


def numpy_backend():
    """The numpy module when the feature flag enables it, else ``None``."""
    return _current().numpy


def numpy_min_rows() -> int:
    """The effective per-block row floor for vectorized scans."""
    return _current().min_rows


def configure_backend(backend: str | None, min_rows: int | None = None) -> None:
    """Set the backend decision programmatically (tests, benchmarks).

    ``backend`` is ``"numpy"`` to force the vector path on, ``"python"``
    to force it off, or ``None`` to forget the override and re-read the
    environment on next use.  ``min_rows`` (default: the env/module
    default) replaces the scan floor.
    """
    global _config
    if backend is None:
        _config = None
        if min_rows is not None:
            config = _config_from_env()
            config.min_rows = min_rows
            _config = config
        return
    if backend not in ("numpy", "python"):
        raise CatalogError(
            f"unknown columnar backend {backend!r}; expected 'numpy' or 'python'"
        )
    numpy = _import_numpy() if backend == "numpy" else None
    if backend == "numpy" and numpy is None:
        raise CatalogError("columnar backend 'numpy' requested but numpy is not importable")
    _config = _BackendConfig(
        numpy, NUMPY_MIN_ROWS if min_rows is None else min_rows
    )


def reset_backend() -> None:
    """Forget any cached/overridden decision; next use re-reads the env."""
    global _config
    _config = None


@contextmanager
def backend_override(backend: str | None, min_rows: int | None = None):
    """Context manager: :func:`configure_backend` scoped to a block."""
    global _config
    saved = _config
    try:
        configure_backend(backend, min_rows)
        yield
    finally:
        _config = saved


class ColumnBlock:
    """An immutable column-major snapshot of interned rows."""

    __slots__ = ("arity", "version", "length", "columns", "_int_rows", "_views")

    def __init__(
        self,
        arity: int,
        version: int,
        columns: Sequence[array],
        length: int | None = None,
    ) -> None:
        self.arity = arity
        self.version = version
        self.columns: tuple[array, ...] = tuple(columns)
        # Zero-arity blocks have no columns to infer a row count from, so
        # the count is explicit; for positive arity the first column rules.
        if self.columns:
            self.length = len(self.columns[0])
        else:
            self.length = 0 if length is None else length
        self._int_rows: list[tuple[int, ...]] | None = None
        self._views: list | None = None

    @classmethod
    def from_rows(
        cls, arity: int, rows: Sequence[tuple[int, ...]], version: int
    ) -> "ColumnBlock":
        columns = [array("q") for _ in range(arity)]
        if rows:
            # zip(*rows) is empty for an empty row set *and* for zero-arity
            # rows; guarding on ``rows`` keeps both from silently diverging
            # from the explicit length below.
            for column, values in zip(columns, zip(*rows)):
                column.extend(values)
        block = cls(arity, version, columns, length=len(rows))
        block._int_rows = list(rows)
        return block

    def __len__(self) -> int:
        return self.length

    def row(self, index: int) -> tuple[int, ...]:
        if index >= self.length:
            raise IndexError(f"row index {index} out of range for {self.length} rows")
        return tuple(column[index] for column in self.columns)

    def int_rows(self) -> list[tuple[int, ...]]:
        """Row-major view (memoized): ``list`` of id tuples."""
        rows = self._int_rows
        if rows is None:
            if self.columns:
                rows = list(zip(*self.columns))
            else:
                rows = [()] * self.length
            self._int_rows = rows
        return rows

    def column_view(self, column: int):
        """A zero-copy numpy view of one column, memoized per column.

        ``array('q')`` supports the buffer protocol, so the view wraps the
        existing storage without copying; blocks are immutable snapshots,
        so the shared storage never changes underneath the view.  Requires
        the numpy backend.
        """
        np = numpy_backend()
        if np is None:
            raise CatalogError("column_view requires the numpy columnar backend")
        views = self._views
        if views is None:
            views = self._views = [None] * self.arity
        view = views[column]
        if view is None:
            view = np.frombuffer(self.columns[column], dtype=np.int64)
            views[column] = view
        return view

    def select(
        self,
        const_checks: Sequence[tuple[int, int]],
        dup_checks: Sequence[tuple[int, int]] = (),
    ) -> Iterable[int]:
        """Indexes of rows passing column==id and column==column checks.

        The numpy backend (see module docstring) vectorizes this scan;
        otherwise a python loop over the row-major view runs.
        """
        n = self.length
        if not const_checks and not dup_checks:
            return range(n)
        config = _current()
        np = config.numpy
        if np is not None and n >= config.min_rows:
            mask = None
            for column, sid in const_checks:
                hits = self.column_view(column) == sid
                mask = hits if mask is None else (mask & hits)
            for left, right in dup_checks:
                hits = self.column_view(left) == self.column_view(right)
                mask = hits if mask is None else (mask & hits)
            return np.nonzero(mask)[0].tolist()
        rows = self.int_rows()
        return [
            index
            for index, row in enumerate(rows)
            if all(row[c] == sid for c, sid in const_checks)
            and all(row[left] == row[right] for left, right in dup_checks)
        ]
