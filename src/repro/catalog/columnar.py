"""Columnar storage layout over interned symbol ids.

A :class:`ColumnBlock` is the column-major mirror of a relation's row set:
one ``array('q')`` (signed 64-bit) per column, holding symbol ids from the
process-wide :data:`~repro.catalog.symbols.SYMBOLS` table.  Blocks are
immutable snapshots stamped with the relation version they were built
from; :meth:`Relation.column_block` memoizes one block per version.

An optional numpy backend vectorizes constant-equality scans.  It engages
only when *all* of the following hold:

* the ``REPRO_COLUMNAR_BACKEND`` environment variable is ``numpy``
  (feature flag, off by default),
* numpy is importable (the import is gated — no hard dependency),
* the block has at least :data:`NUMPY_MIN_ROWS` rows (below that the
  array round-trip costs more than the python loop it replaces).

``array('q')`` supports the buffer protocol, so ``numpy.frombuffer`` wraps
the existing storage without copying.
"""

from __future__ import annotations

import os
from array import array
from typing import Iterable, Sequence

__all__ = ["ColumnBlock", "NUMPY_MIN_ROWS", "numpy_backend"]

#: Below this many rows the vectorized scan is not worth the conversion.
NUMPY_MIN_ROWS = 1024

_NUMPY_UNSET = object()
_numpy_module: object = _NUMPY_UNSET


def numpy_backend():
    """The numpy module when the feature flag enables it, else ``None``."""
    global _numpy_module
    if os.environ.get("REPRO_COLUMNAR_BACKEND", "").lower() != "numpy":
        return None
    if _numpy_module is _NUMPY_UNSET:
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy ships in CI images
            _numpy_module = None
        else:
            _numpy_module = numpy
    return _numpy_module


class ColumnBlock:
    """An immutable column-major snapshot of interned rows."""

    __slots__ = ("arity", "version", "columns", "_int_rows")

    def __init__(
        self, arity: int, version: int, columns: Sequence[array]
    ) -> None:
        self.arity = arity
        self.version = version
        self.columns: tuple[array, ...] = tuple(columns)
        self._int_rows: list[tuple[int, ...]] | None = None

    @classmethod
    def from_rows(
        cls, arity: int, rows: Sequence[tuple[int, ...]], version: int
    ) -> "ColumnBlock":
        columns = [array("q") for _ in range(arity)]
        for column, values in zip(columns, zip(*rows)):
            column.extend(values)
        block = cls(arity, version, columns)
        block._int_rows = list(rows)
        return block

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    def row(self, index: int) -> tuple[int, ...]:
        return tuple(column[index] for column in self.columns)

    def int_rows(self) -> list[tuple[int, ...]]:
        """Row-major view (memoized): ``list`` of id tuples."""
        rows = self._int_rows
        if rows is None:
            rows = list(zip(*self.columns)) if self.columns else []
            self._int_rows = rows
        return rows

    def select(
        self,
        const_checks: Sequence[tuple[int, int]],
        dup_checks: Sequence[tuple[int, int]] = (),
    ) -> Iterable[int]:
        """Indexes of rows passing column==id and column==column checks.

        The numpy backend (see module docstring) vectorizes this scan;
        otherwise a python loop over the row-major view runs.
        """
        n = len(self)
        if not const_checks and not dup_checks:
            return range(n)
        np = numpy_backend()
        if np is not None and n >= NUMPY_MIN_ROWS:
            mask = None
            for column, sid in const_checks:
                hits = np.frombuffer(self.columns[column], dtype=np.int64) == sid
                mask = hits if mask is None else (mask & hits)
            for left, right in dup_checks:
                hits = np.frombuffer(
                    self.columns[left], dtype=np.int64
                ) == np.frombuffer(self.columns[right], dtype=np.int64)
                mask = hits if mask is None else (mask & hits)
            return np.nonzero(mask)[0].tolist()
        rows = self.int_rows()
        return [
            index
            for index, row in enumerate(rows)
            if all(row[c] == sid for c, sid in const_checks)
            and all(row[left] == row[right] for left, right in dup_checks)
        ]
