"""Process-wide constant interning: every constant gets a small int id.

The kernel executor (:mod:`repro.engine.kernels`) joins over plain ints
instead of :class:`~repro.logic.terms.Constant` objects.  Hashing a
``Constant`` allocates a tuple per call (``hash(("const", value))``); an
``int`` hashes to itself.  The :class:`SymbolTable` maps each constant to a
dense id once, at load/insert time, so the hot join loops never touch a
``Constant`` again until answers are externalized.

Design points:

* **Keys are the ``Constant`` objects themselves.**  The table inherits
  ``Constant`` equality exactly: ``Constant(3) == Constant(3.0)`` share one
  id (so id-equality is *precisely* constant-equality, which is what joins
  and ``=``/``!=`` comparisons need), while ``Constant(True)`` and
  ``Constant(1)`` stay distinct.  :meth:`extern` returns the
  first-interned representative of an equality class; since answer sets
  compare by constant equality, this preserves answer-set identity across
  executors.
* **Append-only.**  Ids are never reused or remapped, so interned columns
  cached anywhere in the process stay valid for its lifetime.  A fault
  (guard cancellation, injected error) can at worst leave an *unused* id
  behind — never a dangling or remapped one, so there is no such thing as
  a half-interned symbol.
* **Un-interned constants stay the source of truth.**  Relations keep
  their original ``Constant`` rows; persistence (save/load, CSV) and REPL
  display read those, so round-trips are byte-for-byte regardless of what
  was interned.  Interning is an acceleration structure, not a storage
  format.
"""

from __future__ import annotations

import threading
from typing import Iterable, Sequence

from repro.logic.terms import Constant

__all__ = ["SymbolTable", "SYMBOLS"]


class SymbolTable:
    """A bidirectional, append-only ``Constant`` <-> ``int`` mapping."""

    __slots__ = ("_ids", "_constants", "_lock")

    def __init__(self) -> None:
        self._ids: dict[Constant, int] = {}
        self._constants: list[Constant] = []
        self._lock = threading.Lock()

    def intern(self, constant: Constant) -> int:
        """The id for *constant*, allocating one on first sight."""
        sid = self._ids.get(constant)
        if sid is not None:
            return sid
        with self._lock:
            sid = self._ids.get(constant)
            if sid is None:
                sid = len(self._constants)
                self._constants.append(constant)
                self._ids[constant] = sid
        return sid

    def intern_row(self, row: Sequence[Constant]) -> tuple[int, ...]:
        """Intern every constant of a stored row."""
        intern = self.intern
        return tuple(intern(constant) for constant in row)

    def id_of(self, constant: Constant) -> int | None:
        """The id for *constant* if already interned, else ``None``.

        A read-only probe: lookups for constants the process has never
        stored (e.g. a query pattern over values absent from every
        relation) must not grow the table.
        """
        return self._ids.get(constant)

    def extern(self, sid: int) -> Constant:
        """The constant for an id (first-interned representative)."""
        return self._constants[sid]

    def extern_row(self, row: Sequence[int]) -> tuple[Constant, ...]:
        """Map a row of ids back to constants."""
        constants = self._constants
        return tuple(constants[sid] for sid in row)

    def extern_rows(
        self, rows: Iterable[Sequence[int]]
    ) -> list[tuple[Constant, ...]]:
        constants = self._constants
        return [tuple(constants[sid] for sid in row) for row in rows]

    def extern_block(
        self, flat_ids: Sequence[int], width: int
    ) -> list[tuple[Constant, ...]]:
        """Externalize a flattened row-major block into *width*-tuples.

        One C-level ``map``/``zip`` pass instead of a per-row
        :meth:`extern_row` call — the bulk-flush path for array-backed
        derived tables.  ``width`` must be positive (zero-arity rows have
        nothing to externalize).
        """
        source = map(self._constants.__getitem__, flat_ids)
        return list(zip(*([source] * width)))

    def constants(self) -> list[Constant]:
        """A snapshot of the id -> constant mapping (index = id)."""
        return list(self._constants)

    def __len__(self) -> int:
        return len(self._constants)

    def __contains__(self, constant: object) -> bool:
        return constant in self._ids


#: The process-wide table.  Relations intern into it at insert time; the
#: kernel compiler and executors read it.  Append-only, so sharing one
#: table across every knowledge base in the process is safe.
SYMBOLS = SymbolTable()
