"""All-or-nothing mutation of a knowledge base.

:class:`KBTransaction` makes a span of catalog mutations atomic: either
every fact/rule/constraint/declaration lands, or — on any exception,
including a :class:`~repro.errors.ResourceExhausted` trip or an injected
fault — the knowledge base is restored to its pre-transaction state.

Catalog metadata (schemas, rule lists, constraints) is snapshotted eagerly
on begin: those structures are small and the copies are shallow.  Stored
relations are the bulk of the state, so they are staged **copy-on-touch**:
the first mutation of a relation inside the transaction checkpoints its row
set (:meth:`~repro.catalog.relation.Relation.checkpoint`); untouched
relations cost nothing.  Relations *declared* inside the transaction are
dropped wholesale on rollback.

Use through :meth:`KnowledgeBase.transaction`::

    with kb.transaction():
        kb.add_fact("parent", "ann", "bob")
        kb.add_rule(rule)          # raises TypingError -> the fact is gone too

Transactions nest by joining: an inner ``with kb.transaction():`` block is
absorbed into the outer one (one atomic span, rolled back together).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.catalog.database import KnowledgeBase
    from repro.catalog.relation import Relation, Row


class KBTransaction:
    """Staged state of one atomic mutation span over a knowledge base."""

    def __init__(self, kb: "KnowledgeBase") -> None:
        self._kb = kb
        # Eager, cheap metadata snapshot (shallow copies of small structures).
        self._schemas = dict(kb._schemas)
        self._relation_names = set(kb._relations)
        self._rules = list(kb._rules)
        self._rules_by_head = {h: list(rs) for h, rs in kb._rules_by_head.items()}
        self._constraints = list(kb._constraints)
        # Copy-on-touch relation snapshots: name -> checkpointed row set.
        self._touched: dict[str, dict["Row", None]] = {}
        #: Whether the transaction is still open (neither committed nor
        #: rolled back).
        self.active = True

    def touch(self, predicate: str) -> None:
        """Checkpoint a relation before its first mutation in this span.

        Relations created inside the transaction are not checkpointed —
        rollback removes them entirely.
        """
        if not self.active or predicate in self._touched:
            return
        if predicate not in self._relation_names:
            return  # created inside the transaction; dropped on rollback
        relation = self._kb._relations.get(predicate)
        if relation is not None:
            self._touched[predicate] = relation.checkpoint()

    def rollback(self) -> None:
        """Restore the knowledge base to its pre-transaction state."""
        if not self.active:
            return
        kb = self._kb
        kb._schemas = self._schemas
        kb._rules = self._rules
        kb._rules_by_head = self._rules_by_head
        kb._constraints = self._constraints
        kb._graph = None
        # Restoring older catalog state must not revive version-keyed cache
        # entries: bump the counters past every mid-transaction value.
        kb._rules_version += 1
        kb._constraints_version += 1
        for name in list(kb._relations):
            if name not in self._relation_names:
                del kb._relations[name]
        for name, snapshot in self._touched.items():
            relation = kb._relations.get(name)
            if relation is not None:
                relation.restore(snapshot)
        self.active = False

    def commit(self) -> None:
        """Discard the staged snapshots; the mutations stand.

        On a durable knowledge base (:mod:`repro.catalog.wal`) the whole
        span is then appended to the write-ahead log as **one** record and
        fsynced before this method returns — the ack point of the commit.
        If the append raises, the in-memory mutations stand but are not
        durable; the caller must treat the commit as failed (the next
        successful commit re-captures the gap by diffing).
        """
        self._touched.clear()
        self.active = False
        if self._kb._durability is not None:
            self._kb._durability.commit()
