"""Catalog subsystem: schemas, stored relations, the knowledge base, and
predicate dependency analysis."""

from repro.catalog.columnar import ColumnBlock
from repro.catalog.database import KnowledgeBase
from repro.catalog.persist import export_csv, import_csv, load_kb, save_kb
from repro.catalog.dependencies import DependencyGraph, dependency_graph
from repro.catalog.relation import Relation
from repro.catalog.schema import PredicateKind, PredicateSchema
from repro.catalog.symbols import SYMBOLS, SymbolTable
from repro.catalog.transaction import KBTransaction
from repro.catalog.recovery import Recoverer, RecoveryReport, apply_event
from repro.catalog.snapshot import (
    Fingerprint,
    KBSnapshot,
    fingerprint_token,
    kb_fingerprint,
    publish_snapshot,
)
from repro.catalog.wal import Durability, DurableLog, open_durable

__all__ = [
    "KnowledgeBase",
    "KBSnapshot",
    "KBTransaction",
    "Fingerprint",
    "fingerprint_token",
    "kb_fingerprint",
    "publish_snapshot",
    "Durability",
    "DurableLog",
    "Recoverer",
    "RecoveryReport",
    "apply_event",
    "open_durable",
    "export_csv",
    "import_csv",
    "load_kb",
    "save_kb",
    "DependencyGraph",
    "dependency_graph",
    "ColumnBlock",
    "Relation",
    "PredicateKind",
    "PredicateSchema",
    "SYMBOLS",
    "SymbolTable",
]
