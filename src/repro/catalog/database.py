"""The knowledge-rich database: EDB facts, built-ins, IDB rules.

:class:`KnowledgeBase` is the paper's database ``D`` (section 2.1): a set
``P`` of stored predicates with fact relations, the built-in comparison set
``R``, and a set ``S`` of rule-defined predicates — all mutually disjoint.
It owns the dependency analysis and validates rules on entry (arity
consistency, disjointness, optional typing/linearity discipline for
recursive predicates).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterable, Iterator, Sequence

from repro.errors import (
    ArityError,
    CatalogError,
    DuplicatePredicateError,
    IntegrityError,
    SchemaError,
    TypingError,
    UnknownPredicateError,
)
from repro.catalog.dependencies import DependencyGraph
from repro.catalog.relation import Relation, Row
from repro.catalog.schema import PredicateKind, PredicateSchema
from repro.logic.atoms import Atom
from repro.logic.builtins import is_builtin_predicate
from repro.logic.clauses import IntegrityConstraint, Rule
from repro.logic.typing import (
    is_permutation_rule,
    is_strongly_linear,
    is_typed_with_respect_to,
)


class KnowledgeBase:
    """A deductive database of EDB relations and IDB rules.

    Parameters
    ----------
    enforce_recursion_discipline:
        When true (the default), adding a recursive rule that is neither a
        permutation rule (section 5.3 relaxation) nor strongly linear and
        typed w.r.t. its head raises :class:`TypingError`, matching the
        paper's standing assumption.  Turn off to experiment with rule sets
        outside the paper's fragment.
    """

    def __init__(self, name: str = "db", enforce_recursion_discipline: bool = True) -> None:
        self.name = name
        self.enforce_recursion_discipline = enforce_recursion_discipline
        self._schemas: dict[str, PredicateSchema] = {}
        self._relations: dict[str, Relation] = {}
        self._rules: list[Rule] = []
        self._rules_by_head: dict[str, list[Rule]] = {}
        self._constraints: list[IntegrityConstraint] = []
        self._graph: DependencyGraph | None = None
        #: The open transaction, if any (see :meth:`transaction`).
        self._tx = None
        #: The write-ahead-log binding when the knowledge base is durable
        #: (see :mod:`repro.catalog.wal`); ``None`` for in-memory use.
        self._durability = None
        #: Monotone counters for external version-keyed caches: the first
        #: changes whenever the rule set or the predicate catalog changes
        #: (anything that can alter what is derivable, facts aside), the
        #: second whenever the constraint set changes.  Transaction rollback
        #: bumps both past every mid-transaction value.
        self._rules_version = 0
        self._constraints_version = 0
        #: A frozen knowledge base is the payload of a published
        #: :class:`~repro.catalog.snapshot.KBSnapshot`: every mutator
        #: raises, so concurrent readers need no locks.
        self._frozen = False

    # -- transactions -------------------------------------------------------------

    @contextmanager
    def transaction(self) -> Iterator[object]:
        """An all-or-nothing mutation span.

        Every mutation inside the ``with`` block — facts, rules,
        constraints, declarations — lands atomically: if the block raises,
        the knowledge base is restored to its state at entry and the
        exception propagates.  Nested ``transaction()`` blocks join the
        outermost one (a single atomic span).
        """
        from repro.catalog.transaction import KBTransaction  # local: avoid cycle

        self._assert_mutable()
        if self._tx is not None:
            yield self._tx  # join the enclosing transaction
            return
        tx = KBTransaction(self)
        self._tx = tx
        try:
            yield tx
        except BaseException:
            self._tx = None
            tx.rollback()
            raise
        else:
            self._tx = None
            tx.commit()

    def _assert_mutable(self) -> None:
        if self._frozen:
            raise CatalogError(
                "knowledge base belongs to a published snapshot and is "
                "immutable; mutate the live knowledge base instead"
            )

    @property
    def frozen(self) -> bool:
        """Whether this knowledge base is a published, immutable snapshot."""
        return self._frozen

    def _tx_touch(self, predicate: str) -> None:
        """Checkpoint a relation for the open transaction, if any."""
        if self._tx is not None:
            self._tx.touch(predicate)

    def _autocommit(self) -> None:
        """Make a mutation outside any transaction durable immediately.

        Mutations inside a transaction batch into one log record at
        :meth:`KBTransaction.commit
        <repro.catalog.transaction.KBTransaction.commit>`; outside one,
        each mutating call syncs on its own (one record, one fsync).
        Mutations that bypass the KnowledgeBase API (direct
        :class:`~repro.catalog.relation.Relation` calls) are captured by
        the next commit's diff instead of immediately.
        """
        if self._tx is None and self._durability is not None:
            self._durability.commit()

    @property
    def durability(self):
        """The write-ahead-log binding, or ``None`` when in-memory only."""
        return self._durability

    # -- schema -----------------------------------------------------------------

    def declare_edb(
        self, name: str, arity: int, attributes: Sequence[str] | None = None
    ) -> PredicateSchema:
        """Declare a stored (EDB) predicate."""
        schema = PredicateSchema(name, arity, PredicateKind.EDB, attributes)
        self._register(schema)
        self._relations[name] = Relation(arity)
        self._autocommit()
        return schema

    def declare_idb(
        self, name: str, arity: int, attributes: Sequence[str] | None = None
    ) -> PredicateSchema:
        """Declare a rule-defined (IDB) predicate.

        Declaration is optional — adding a rule auto-declares its head — but
        lets applications fix attribute names and catch arity drift early.
        """
        schema = PredicateSchema(name, arity, PredicateKind.IDB, attributes)
        self._register(schema)
        self._autocommit()
        return schema

    def _register(self, schema: PredicateSchema) -> None:
        self._assert_mutable()
        if is_builtin_predicate(schema.name):
            raise DuplicatePredicateError(
                f"{schema.name} is a built-in predicate and cannot be redeclared"
            )
        existing = self._schemas.get(schema.name)
        if existing is not None:
            if existing.kind != schema.kind:
                raise DuplicatePredicateError(
                    f"predicate {schema.name} already declared as {existing.kind.value}"
                )
            if existing.arity != schema.arity:
                raise SchemaError(
                    f"predicate {schema.name} already declared with arity {existing.arity}"
                )
            return
        self._schemas[schema.name] = schema
        self._rules_version += 1

    def schema(self, name: str) -> PredicateSchema:
        """The schema of a declared predicate (raises if unknown)."""
        try:
            return self._schemas[name]
        except KeyError:
            raise UnknownPredicateError(f"unknown predicate: {name}") from None

    def has_predicate(self, name: str) -> bool:
        """Whether the predicate is declared (EDB or IDB) or built-in."""
        return name in self._schemas or is_builtin_predicate(name)

    def is_edb(self, name: str) -> bool:
        """Whether *name* is a stored predicate."""
        schema = self._schemas.get(name)
        return schema is not None and schema.kind is PredicateKind.EDB

    def is_idb(self, name: str) -> bool:
        """Whether *name* is a rule-defined predicate."""
        schema = self._schemas.get(name)
        return schema is not None and schema.kind is PredicateKind.IDB

    def is_builtin(self, name: str) -> bool:
        """Whether *name* is a built-in comparison predicate."""
        return is_builtin_predicate(name)

    def edb_predicates(self) -> list[str]:
        """Names of all stored predicates."""
        return sorted(n for n, s in self._schemas.items() if s.kind is PredicateKind.EDB)

    def idb_predicates(self) -> list[str]:
        """Names of all rule-defined predicates."""
        return sorted(n for n, s in self._schemas.items() if s.kind is PredicateKind.IDB)

    # -- facts -------------------------------------------------------------------

    def add_fact(self, predicate: str, *values: object) -> bool:
        """Store one fact; returns ``False`` when it was already present."""
        self._assert_mutable()
        if not self.is_edb(predicate):
            if self.is_idb(predicate):
                raise SchemaError(
                    f"{predicate} is an IDB predicate; facts belong to EDB predicates"
                )
            raise UnknownPredicateError(f"unknown EDB predicate: {predicate}")
        self._tx_touch(predicate)
        inserted = self._relations[predicate].insert(values)
        if inserted:
            self._autocommit()
        return inserted

    def add_facts(self, predicate: str, rows: Iterable[Sequence[object]]) -> int:
        """Store many facts; returns how many were new.

        On a durable knowledge base the rows batch into one transaction
        (one log record, one fsync) instead of syncing per row.
        """
        if self._durability is not None and self._tx is None:
            with self.transaction():
                return sum(1 for row in rows if self.add_fact(predicate, *row))
        return sum(1 for row in rows if self.add_fact(predicate, *row))

    def relation(self, predicate: str) -> Relation:
        """The stored relation behind an EDB predicate."""
        if not self.is_edb(predicate):
            raise UnknownPredicateError(f"not an EDB predicate: {predicate}")
        return self._relations[predicate]

    def facts(self, predicate: str) -> list[Row]:
        """All stored rows of an EDB predicate."""
        return self.relation(predicate).rows()

    def fact_count(self) -> int:
        """Total number of stored facts across all EDB relations."""
        return sum(len(rel) for rel in self._relations.values())

    # -- rules --------------------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Add one IDB rule, validating schema and recursion discipline."""
        self._assert_mutable()
        head = rule.head
        if is_builtin_predicate(head.predicate):
            raise SchemaError(f"rule head may not be a built-in predicate: {head}")
        if self.is_edb(head.predicate):
            raise SchemaError(
                f"{head.predicate} is an EDB predicate and may not head a rule"
            )
        existing = self._schemas.get(head.predicate)
        if existing is None:
            self.declare_idb(head.predicate, head.arity)
        else:
            existing.check_arity(head.arity)
        for body_atom in (*rule.body, *rule.negated):
            self._check_body_atom(body_atom)
        self._rules.append(rule)
        self._rules_by_head.setdefault(head.predicate, []).append(rule)
        self._graph = None
        # Any new rule (positive ones included) can close a cycle through an
        # existing negative edge, so re-check whenever negation is present.
        if rule.negated or any(r.negated for r in self._rules):
            violations = self.dependency_graph().negation_violations()
            if violations:
                self._rules.pop()
                self._rules_by_head[head.predicate].pop()
                self._graph = None
                pairs = ", ".join(f"{h} -> not {n}" for h, n in violations)
                raise TypingError(
                    f"rule {rule} creates recursion through negation ({pairs}); "
                    "only stratified rule sets are supported"
                )
        self._rules_version += 1
        if self.enforce_recursion_discipline:
            self._check_recursion_discipline(rule)
        self._autocommit()

    def _check_body_atom(self, atom: Atom) -> None:
        if atom.is_comparison():
            if atom.arity != 2:
                raise ArityError(f"comparison atoms are binary: {atom}")
            return
        schema = self._schemas.get(atom.predicate)
        if schema is not None:
            schema.check_arity(atom.arity)
        # Unknown body predicates are allowed at rule-entry time (mutual
        # recursion may define them later); safety analysis re-checks.

    def _check_recursion_discipline(self, new_rule: Rule) -> None:
        graph = self.dependency_graph()
        for rule in self.rules_for(new_rule.head.predicate):
            if not graph.is_recursive_rule(rule):
                continue
            if is_permutation_rule(rule):
                continue  # handled by bounded application (section 5.3)
            head = rule.head.predicate
            if head not in rule.body_predicates():
                # Mutual recursion without a direct self-occurrence: the
                # data engines evaluate it fine; only the describe
                # transformation is restricted (it raises TransformError).
                continue
            if not is_strongly_linear(rule):
                raise TypingError(f"recursive rule is not strongly linear: {rule}")
            if not is_typed_with_respect_to(rule, head):
                raise TypingError(
                    f"recursive rule is not typed w.r.t. {head}: {rule}"
                )

    def add_rules(self, rules: Iterable[Rule]) -> None:
        """Add many rules.

        Mutually recursive groups should be added through this entry point:
        discipline checking is deferred until the whole group is in place.
        On a durable knowledge base the group batches into one transaction
        (one log record) instead of syncing per rule.
        """
        if self._durability is not None and self._tx is None:
            with self.transaction():
                self.add_rules(rules)
            return
        saved = self.enforce_recursion_discipline
        self.enforce_recursion_discipline = False
        added: list[Rule] = []
        try:
            for rule in rules:
                self.add_rule(rule)
                added.append(rule)
        finally:
            self.enforce_recursion_discipline = saved
        if saved:
            for rule in added:
                self._check_recursion_discipline(rule)

    def rules(self) -> list[Rule]:
        """All IDB rules, in insertion order."""
        return list(self._rules)

    def rules_for(self, predicate: str) -> list[Rule]:
        """Rules whose head predicate is *predicate*."""
        return list(self._rules_by_head.get(predicate, ()))

    def rule_count(self) -> int:
        """Total number of IDB rules."""
        return len(self._rules)

    # -- constraints -----------------------------------------------------------------

    def add_constraint(self, constraint: IntegrityConstraint) -> None:
        """Add an integrity constraint (used for validation, not inference)."""
        self._assert_mutable()
        self._constraints.append(constraint)
        self._constraints_version += 1
        self._autocommit()

    def constraints(self) -> list[IntegrityConstraint]:
        """All integrity constraints."""
        return list(self._constraints)

    def check_integrity(self) -> None:
        """Raise :class:`IntegrityError` if stored facts violate a constraint.

        Constraints are evaluated against the full database (EDB plus IDB),
        so a constraint over derived predicates is honoured too.
        """
        from repro.engine.evaluate import evaluate_conjunction  # local: avoid cycle

        for constraint in self._constraints:
            witnesses = evaluate_conjunction(self, constraint.body)
            first = next(iter(witnesses), None)
            if first is not None:
                raise IntegrityError(
                    f"constraint {constraint} violated, e.g. by {first}"
                )

    # -- analysis ---------------------------------------------------------------------

    @property
    def rules_version(self) -> int:
        """Mutation counter over the rule set and predicate catalog.

        Changes whenever what is *derivable* can change for reasons other
        than stored facts: a rule added, a predicate declared, a transaction
        rolled back.  Version-keyed caches (:mod:`repro.engine.viewcache`)
        pair it with per-relation :attr:`~repro.catalog.relation.Relation.version`
        counters to fingerprint a query's full dependency state.
        """
        return self._rules_version

    @property
    def constraints_version(self) -> int:
        """Mutation counter over the integrity-constraint set."""
        return self._constraints_version

    def dependency_graph(self) -> DependencyGraph:
        """The (cached) dependency graph of the current rule set."""
        if self._graph is None:
            self._graph = DependencyGraph(self._rules)
        return self._graph

    def is_recursive(self, predicate: str) -> bool:
        """Whether the predicate heads a recursive rule."""
        return self.dependency_graph().is_recursive_predicate(predicate)

    def depends_on_recursion(self, predicate: str) -> bool:
        """Whether the predicate is recursive or depends on a recursive one."""
        return self.dependency_graph().depends_on_recursion(predicate)

    # -- misc --------------------------------------------------------------------------

    def with_rules(self, rules: Iterable[Rule], name: str | None = None) -> "KnowledgeBase":
        """A copy sharing this database's facts but with a replacement IDB.

        Used to evaluate a transformed rule set against the original one
        (the discipline check is off in the copy: transformed programs
        contain rules like ``r_T`` that are linear but not strongly linear).
        """
        clone = KnowledgeBase(
            name or f"{self.name}_rewritten", enforce_recursion_discipline=False
        )
        clone._schemas = {
            n: s for n, s in self._schemas.items() if s.kind is PredicateKind.EDB
        }
        clone._relations = {n: r.copy() for n, r in self._relations.items()}
        clone._constraints = list(self._constraints)
        for rule in rules:
            clone.add_rule(rule)
        return clone

    def copy(self, name: str | None = None) -> "KnowledgeBase":
        """A deep-enough copy: independent relations and rule lists."""
        clone = KnowledgeBase(
            name or self.name,
            enforce_recursion_discipline=self.enforce_recursion_discipline,
        )
        clone._schemas = dict(self._schemas)
        clone._relations = {n: r.copy() for n, r in self._relations.items()}
        clone._rules = list(self._rules)
        clone._rules_by_head = {h: list(rs) for h, rs in self._rules_by_head.items()}
        clone._constraints = list(self._constraints)
        return clone

    def __repr__(self) -> str:
        return (
            f"KnowledgeBase({self.name!r}: {len(self.edb_predicates())} EDB, "
            f"{self.fact_count()} facts, {self.rule_count()} rules)"
        )

    def describe_catalog(self) -> Iterator[str]:
        """Human-readable catalog listing (one line per predicate)."""
        for name in self.edb_predicates():
            yield f"EDB  {self.schema(name)}  [{len(self._relations[name])} facts]"
        for name in self.idb_predicates():
            marker = " (recursive)" if self.is_recursive(name) else ""
            yield f"IDB  {self.schema(name)}  [{len(self.rules_for(name))} rules]{marker}"
